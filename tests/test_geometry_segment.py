"""Unit + property tests for moving segments and their distance
machinery (trinomial coefficients, moving-point-vs-rectangle minimum)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TrajectoryError
from repro.geometry import (
    MBR2D,
    Point,
    STPoint,
    STSegment,
    distance_trinomial_coefficients,
    min_moving_point_rect_distance,
)

from conftest import small_coord


def seg(x1, y1, t1, x2, y2, t2) -> STSegment:
    return STSegment(STPoint(x1, y1, t1), STPoint(x2, y2, t2))


@st.composite
def segments(draw, t_lo=0.0, t_hi=10.0):
    t1 = draw(st.floats(min_value=t_lo, max_value=t_hi - 0.5))
    t2 = draw(st.floats(min_value=t1 + 0.1, max_value=t_hi))
    return seg(
        draw(small_coord),
        draw(small_coord),
        t1,
        draw(small_coord),
        draw(small_coord),
        t2,
    )


@st.composite
def rects(draw):
    x1, x2 = sorted([draw(small_coord), draw(small_coord)])
    y1, y2 = sorted([draw(small_coord), draw(small_coord)])
    return MBR2D(x1, y1, x2, y2)


class TestSTSegment:
    def test_zero_duration_rejected(self):
        with pytest.raises(TrajectoryError):
            seg(0, 0, 1.0, 1, 1, 1.0)

    def test_backwards_time_rejected(self):
        with pytest.raises(TrajectoryError):
            seg(0, 0, 2.0, 1, 1, 1.0)

    def test_velocity_and_speed(self):
        s = seg(0, 0, 0, 3, 4, 1)
        assert s.velocity == (3.0, 4.0)
        assert s.speed == 5.0

    def test_position_interpolation(self):
        s = seg(0, 0, 0, 10, 20, 10)
        assert s.position_at(5.0) == Point(5.0, 10.0)
        assert s.position_at(0.0) == Point(0.0, 0.0)
        assert s.position_at(10.0) == Point(10.0, 20.0)

    def test_position_outside_span_rejected(self):
        with pytest.raises(TrajectoryError):
            seg(0, 0, 0, 1, 1, 1).position_at(1.5)

    def test_clipped_endpoints_interpolated(self):
        s = seg(0, 0, 0, 10, 0, 10)
        c = s.clipped(2.0, 6.0)
        assert c.start == STPoint(2.0, 0.0, 2.0)
        assert c.end == STPoint(6.0, 0.0, 6.0)

    def test_clipped_noop_when_window_covers(self):
        s = seg(0, 0, 0, 1, 1, 1)
        assert s.clipped(-5, 5) is s

    def test_clipped_empty_window_rejected(self):
        with pytest.raises(TrajectoryError):
            seg(0, 0, 0, 1, 1, 1).clipped(2.0, 3.0)

    def test_mbr_covers_endpoints(self):
        s = seg(3, -1, 0, -2, 4, 5)
        box = s.mbr()
        assert box.contains_point(s.start) and box.contains_point(s.end)
        assert box.tmin == 0 and box.tmax == 5

    @given(segments(), st.floats(min_value=0.0, max_value=1.0))
    def test_interpolated_point_inside_mbr(self, s, frac):
        t = s.ts + frac * s.duration
        assert s.mbr().contains_point(s.st_point_at(t))


class TestDistanceTrinomial:
    def test_parallel_motion_constant_distance(self):
        a = seg(0, 0, 0, 10, 0, 10)
        b = seg(0, 3, 0, 10, 3, 10)
        coeff_a, coeff_b, coeff_c, lo, hi = distance_trinomial_coefficients(a, b)
        assert coeff_a == pytest.approx(0.0, abs=1e-12)
        assert coeff_b == pytest.approx(0.0, abs=1e-12)
        assert coeff_c == pytest.approx(9.0)
        assert (lo, hi) == (0.0, 10.0)

    def test_no_temporal_overlap_rejected(self):
        with pytest.raises(TrajectoryError):
            distance_trinomial_coefficients(
                seg(0, 0, 0, 1, 1, 1), seg(0, 0, 2, 1, 1, 3)
            )

    @given(segments(), segments())
    @settings(max_examples=200)
    def test_trinomial_matches_pointwise_distance(self, q, t):
        lo = max(q.ts, t.ts)
        hi = min(q.te, t.te)
        if lo >= hi:
            return
        a, b, c, t0, t1 = distance_trinomial_coefficients(q, t)
        assert a >= 0.0
        span = t1 - t0
        for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
            tau = frac * span
            time = min(t0 + tau, t1)  # guard t0 + span rounding past t1
            expected = q.position_at(time).distance_to(t.position_at(time))
            got = math.sqrt(max(a * tau * tau + b * tau + c, 0.0))
            assert got == pytest.approx(expected, abs=1e-6)


class TestMovingPointRectDistance:
    def test_point_inside_rect_gives_zero(self):
        s = seg(0.5, 0.5, 0, 0.6, 0.6, 1)
        assert min_moving_point_rect_distance(s, MBR2D(0, 0, 1, 1)) == 0.0

    def test_flyby_minimum(self):
        # Crosses x = 0 at distance 2 below the unit square.
        s = seg(-5, -3, 0, 5, -3, 10)
        assert min_moving_point_rect_distance(s, MBR2D(-1, -1, 1, 1)) == pytest.approx(2.0)

    def test_window_restricts_search(self):
        # The close approach happens at t = 5; windowed out, the best
        # is the position at the window edge.
        s = seg(-5, -3, 0, 5, -3, 10)
        rect = MBR2D(-1, -1, 1, 1)
        d = min_moving_point_rect_distance(s, rect, 0.0, 1.0)
        expected = rect.mindist_to_point(s.position_at(1.0))
        assert d == pytest.approx(expected)

    def test_disjoint_window_rejected(self):
        with pytest.raises(TrajectoryError):
            min_moving_point_rect_distance(
                seg(0, 0, 0, 1, 1, 1), MBR2D(0, 0, 1, 1), 2.0, 3.0
            )

    def test_degenerate_instant_window(self):
        s = seg(-5, 0, 0, 5, 0, 10)
        d = min_moving_point_rect_distance(s, MBR2D(10, 10, 11, 11), 5.0, 5.0)
        assert d == pytest.approx(Point(0, 0).distance_to(Point(10, 10)))

    @given(segments(), rects())
    @settings(max_examples=200)
    def test_lower_bounds_dense_sampling(self, s, rect):
        analytic = min_moving_point_rect_distance(s, rect)
        sampled = min(
            rect.mindist_to_point(
                s.position_at(min(s.ts + f * s.duration / 64.0, s.te))
            )
            for f in range(65)
        )
        # 1e-7 absolute: the quadratic minimisation takes a sqrt of a
        # value subject to ~1e-16 cancellation noise.
        assert analytic <= sampled + 1e-7

    @given(segments(), rects())
    @settings(max_examples=100)
    def test_matches_dense_sampling_closely(self, s, rect):
        # With 1024 samples the discrete minimum should be within a
        # small gap of the analytic one (quadratic pieces are smooth).
        analytic = min_moving_point_rect_distance(s, rect)
        n = 1024
        sampled = min(
            rect.mindist_to_point(s.position_at(min(s.ts + i * s.duration / n, s.te)))
            for i in range(n + 1)
        )
        assert sampled - analytic >= -1e-7
        assert sampled - analytic <= s.speed * s.duration / n + 1e-7
