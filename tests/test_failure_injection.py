"""Failure injection: corrupt pages, starved buffers, disk-backed
operation, and degenerate-but-legal inputs must all either work or
fail loudly with the library's own exceptions — never wrong answers or
silent corruption."""

import random

import pytest

from repro import RTree3D, TBTree, Trajectory, generate_gstd
from repro.search.bfmst import bfmst_search
from repro.search.linear_scan import linear_scan_kmst
from repro.datagen import make_query
from repro.exceptions import IndexError_, ReproError, StorageError
from repro.storage import DiskPageFile, InMemoryPageFile, LRUBufferManager


class TestCorruptPages:
    def test_corrupt_node_kind_detected(self, small_dataset):
        index = RTree3D()
        index.bulk_insert(small_dataset)
        index.finalize()
        # stomp on the root page behind the buffer's back; since v2
        # the page frame (magic/CRC) catches this before node parsing
        raw = bytearray(index.pagefile.read(index.root_page))
        raw[0] = 0xEE
        index.pagefile.write(index.root_page, bytes(raw))
        index.buffer.drop()
        with pytest.raises(StorageError):
            index.read_node(index.root_page)

    def test_truncated_entry_count_detected(self, small_dataset):
        index = RTree3D()
        index.bulk_insert(small_dataset)
        index.finalize()
        raw = bytearray(index.pagefile.read(index.root_page))
        raw[18] = 0xFF  # entry count bytes inside the framed payload
        raw[19] = 0xFF
        index.pagefile.write(index.root_page, bytes(raw))
        index.buffer.drop()
        with pytest.raises(StorageError):
            index.read_node(index.root_page)

    def test_all_failures_are_repro_errors(self, small_dataset):
        """Callers can catch the library's base class."""
        index = RTree3D()
        index.bulk_insert(small_dataset)
        index.finalize()
        raw = bytearray(index.pagefile.read(index.root_page))
        raw[0] = 0xEE
        index.pagefile.write(index.root_page, bytes(raw))
        index.buffer.drop()
        with pytest.raises(ReproError):
            index.read_node(index.root_page)


class TestStarvedBuffer:
    @pytest.mark.parametrize("cls", [RTree3D, TBTree])
    def test_query_correct_with_single_page_buffer(self, cls, tiny_dataset):
        """A buffer of capacity 1 thrashes but must not change any
        answer."""
        index = cls()
        index.bulk_insert(tiny_dataset)
        index.buffer.flush(index._serializer)
        index.buffer.capacity = 1
        index.buffer.drop()
        rng = random.Random(5)
        query, period = make_query(tiny_dataset, 0.2, rng)
        got, stats = bfmst_search(index, query, period, k=3)
        want = linear_scan_kmst(tiny_dataset, query, period, k=3, exact=True)
        assert [m.trajectory_id for m in got] == [
            m.trajectory_id for m in want
        ]
        assert stats.buffer_misses > stats.buffer_hits  # it really thrashed


class TestDiskBackedIndex:
    def test_build_and_query_directly_on_disk(self, tiny_dataset, tmp_path):
        """The whole lifecycle on a real file, no in-memory stage."""
        pagefile = DiskPageFile(tmp_path / "native.pages")
        index = RTree3D(pagefile=pagefile)
        index.bulk_insert(tiny_dataset)
        index.finalize()
        rng = random.Random(8)
        query, period = make_query(tiny_dataset, 0.2, rng)
        got, _ = bfmst_search(index, query, period, k=2)
        want = linear_scan_kmst(tiny_dataset, query, period, k=2, exact=True)
        assert [m.trajectory_id for m in got] == [
            m.trajectory_id for m in want
        ]
        assert pagefile.stats.physical_writes > 0
        pagefile.close()


class TestDegenerateInputs:
    def test_stationary_objects(self):
        """Objects that never move (zero speed, zero V_max)."""
        ds = [
            Trajectory(i, [(i * 1.0, 0.0, 0.0), (i * 1.0, 0.0, 10.0)])
            for i in range(5)
        ]
        index = RTree3D()
        for tr in ds:
            index.insert(tr)
        index.finalize()
        query = Trajectory(-1, [(0.2, 0.0, 2.0), (0.2, 0.0, 8.0)])
        got, _ = bfmst_search(index, query, (2.0, 8.0), k=2)
        assert [m.trajectory_id for m in got] == [0, 1]
        assert index.max_speed == 0.0

    def test_coincident_objects(self):
        """Several objects on exactly the same path: stable tie-break
        by id, all dissimilarities zero."""
        path = [(0.0, 0.0, 0.0), (5.0, 5.0, 10.0)]
        index = RTree3D()
        for i in range(4):
            index.insert(Trajectory(i, path))
        index.finalize()
        query = Trajectory(-1, path)
        got, _ = bfmst_search(index, query, (0.0, 10.0), k=4)
        assert [m.trajectory_id for m in got] == [0, 1, 2, 3]
        assert all(m.dissim == pytest.approx(0.0, abs=1e-12) for m in got)

    def test_two_sample_trajectories(self):
        """Minimum-size trajectories everywhere."""
        index = TBTree()
        rng = random.Random(0)
        for i in range(20):
            x, y = rng.random(), rng.random()
            index.insert(
                Trajectory(i, [(x, y, 0.0), (x + 0.1, y - 0.1, 10.0)])
            )
        index.finalize()
        query = Trajectory(-1, [(0.5, 0.5, 0.0), (0.6, 0.4, 10.0)])
        got, _ = bfmst_search(index, query, (0.0, 10.0), k=3)
        assert len(got) == 3

    def test_very_long_thin_world(self):
        """Everything on one line (zero-volume MBBs throughout)."""
        index = RTree3D(page_size=512)
        for i in range(30):
            index.insert(
                Trajectory(
                    i,
                    [(float(j), 0.0, float(j) + i * 0.001) for j in range(12)],
                )
            )
        index.finalize()
        ds_query = Trajectory(-1, [(3.0, 0.0, 3.5), (6.0, 0.0, 6.5)])
        got, stats = bfmst_search(index, ds_query, (3.5, 6.5), k=1)
        assert len(got) == 1
        assert stats.node_accesses > 0
