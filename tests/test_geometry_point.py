"""Unit tests for planar / spatiotemporal points."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, STPoint

from conftest import small_coord


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == 5.0

    def test_distance_to_self_is_zero(self):
        p = Point(1.5, -2.5)
        assert p.distance_to(p) == 0.0

    def test_translation(self):
        assert Point(1.0, 2.0).translated(0.5, -1.0) == Point(1.5, 1.0)

    def test_as_tuple(self):
        assert Point(1.0, 2.0).as_tuple() == (1.0, 2.0)

    @given(small_coord, small_coord, small_coord, small_coord)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == b.distance_to(a)

    def test_equality_and_hash(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert hash(Point(1.0, 2.0)) == hash(Point(1.0, 2.0))
        assert Point(1.0, 2.0) != Point(2.0, 1.0)


class TestSTPoint:
    def test_spatial_projection(self):
        p = STPoint(1.0, 2.0, 3.0)
        assert p.spatial == Point(1.0, 2.0)

    def test_distance_ignores_time(self):
        a = STPoint(0.0, 0.0, 0.0)
        b = STPoint(3.0, 4.0, 99.0)
        assert a.distance_to(b) == 5.0

    def test_translated_with_time(self):
        p = STPoint(1.0, 2.0, 3.0).translated(1.0, 1.0, 2.0)
        assert p == STPoint(2.0, 3.0, 5.0)

    def test_translated_default_keeps_time(self):
        assert STPoint(1.0, 2.0, 3.0).translated(1.0, 0.0).t == 3.0

    def test_is_finite_rejects_nan_and_inf(self):
        assert STPoint(1.0, 2.0, 3.0).is_finite()
        assert not STPoint(math.nan, 2.0, 3.0).is_finite()
        assert not STPoint(1.0, math.inf, 3.0).is_finite()
        assert not STPoint(1.0, 2.0, -math.inf).is_finite()

    def test_as_tuple(self):
        assert STPoint(1.0, 2.0, 3.0).as_tuple() == (1.0, 2.0, 3.0)
