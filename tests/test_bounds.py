"""Tests for the pruning bounds (Definitions 3-6, Lemmas 2-4).

The headline properties, checked on randomly generated partial
retrievals:

* ``OPTDISSIM <= exact DISSIM <= PESDISSIM`` with the true ``V_max``,
* ``OPTDISSIMINC <= exact DISSIM`` whenever ``mindist`` really lower
  bounds the distance over the unretrieved gaps,
* ``MINDISSIMINC`` is the minimum of its two ingredients.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PartialDissim, dissim_exact, distance_at, mindissim_inc
from repro.distance import IntegralResult, segment_dissim
from repro.exceptions import QueryError

from conftest import cotemporal_trajectory_pairs


def build_partial(q, t, keep_segments):
    """A PartialDissim for t with only ``keep_segments`` (by index)
    retrieved."""
    partial = PartialDissim(q.t_start, q.t_end)
    for k in sorted(keep_segments):
        seg = t.segment(k)
        total, d_lo, d_hi = segment_dissim(q, seg, seg.ts, seg.te)
        partial.add_interval(seg.ts, seg.te, total, d_lo, d_hi)
    return partial


class TestRecordKeeping:
    def test_empty_period_rejected(self):
        with pytest.raises(QueryError):
            PartialDissim(5.0, 5.0)

    def test_interval_outside_period_rejected(self):
        p = PartialDissim(0.0, 10.0)
        with pytest.raises(QueryError):
            p.add_interval(8.0, 12.0, IntegralResult(1.0, 0.0), 1.0, 1.0)

    def test_overlapping_interval_rejected(self):
        p = PartialDissim(0.0, 10.0)
        p.add_interval(2.0, 5.0, IntegralResult(1.0, 0.0), 1.0, 1.0)
        with pytest.raises(QueryError):
            p.add_interval(4.0, 6.0, IntegralResult(1.0, 0.0), 1.0, 1.0)
        with pytest.raises(QueryError):
            p.add_interval(0.0, 3.0, IntegralResult(1.0, 0.0), 1.0, 1.0)

    def test_adjacent_intervals_coalesce(self):
        p = PartialDissim(0.0, 10.0)
        p.add_interval(0.0, 4.0, IntegralResult(1.0, 0.1), 2.0, 3.0)
        p.add_interval(4.0, 10.0, IntegralResult(2.0, 0.2), 3.0, 1.0)
        assert len(p.intervals) == 1
        iv = p.intervals[0]
        assert (iv.t_lo, iv.t_hi) == (0.0, 10.0)
        assert iv.integral.approx == pytest.approx(3.0)
        assert iv.integral.error_bound == pytest.approx(0.3)
        assert (iv.d_lo, iv.d_hi) == (2.0, 1.0)
        assert p.is_complete()

    def test_out_of_order_insertion(self):
        p = PartialDissim(0.0, 10.0)
        p.add_interval(6.0, 8.0, IntegralResult(1.0, 0.0), 1.0, 1.0)
        p.add_interval(0.0, 2.0, IntegralResult(1.0, 0.0), 1.0, 1.0)
        p.add_interval(2.0, 6.0, IntegralResult(1.0, 0.0), 1.0, 1.0)
        assert [(\
            iv.t_lo, iv.t_hi) for iv in p.intervals] == [(0.0, 8.0)]
        assert not p.is_complete()

    def test_gap_enumeration_with_boundaries(self):
        p = PartialDissim(0.0, 10.0)
        p.add_interval(2.0, 4.0, IntegralResult(1.0, 0.0), 7.0, 8.0)
        p.add_interval(6.0, 9.0, IntegralResult(1.0, 0.0), 9.0, 3.0)
        gaps = p.gaps()
        assert gaps == [
            (0.0, 2.0, None, 7.0),
            (4.0, 6.0, 8.0, 9.0),
            (9.0, 10.0, 3.0, None),
        ]

    def test_covered_duration(self):
        p = PartialDissim(0.0, 10.0)
        p.add_interval(1.0, 3.0, IntegralResult(0.0, 0.0), 0.0, 0.0)
        assert p.covered_duration() == pytest.approx(2.0)

    def test_negative_vmax_rejected(self):
        p = PartialDissim(0.0, 10.0)
        with pytest.raises(QueryError):
            p.optdissim(-1.0)
        with pytest.raises(QueryError):
            p.pesdissim(-1.0)
        with pytest.raises(QueryError):
            p.optdissim_inc(-1.0)


class TestHandComputedBounds:
    def test_no_coverage_bounds(self):
        p = PartialDissim(0.0, 10.0)
        assert p.optdissim(5.0) == 0.0
        # With no segment seen, nothing bounds the object's position:
        # the pessimistic estimate is infinite.
        assert p.pesdissim(5.0) == float("inf")

    def test_trailing_gap(self):
        p = PartialDissim(0.0, 10.0)
        p.add_interval(0.0, 6.0, IntegralResult(12.0, 0.0), 2.0, 4.0)
        # gap [6, 10], distance 4 at t=6.
        # optimistic: approach at vmax=1 -> 4,3,2,1,0 area = 8 - hits 0
        # at t=10 exactly: trapezoid (4+0)/2*4 = 8.
        assert p.optdissim(1.0) == pytest.approx(12.0 + 8.0)
        # pessimistic: diverge to 8: (4+8)/2*4 = 24.
        assert p.pesdissim(1.0) == pytest.approx(12.0 + 24.0)

    def test_interior_gap_v_shape(self):
        p = PartialDissim(0.0, 10.0)
        p.add_interval(0.0, 4.0, IntegralResult(0.0, 0.0), 0.0, 3.0)
        p.add_interval(8.0, 10.0, IntegralResult(0.0, 0.0), 3.0, 0.0)
        # gap [4, 8]: d=3 on both sides, vmax=1: V bottoms at 1 at t=6.
        # area = 2 legs of trapezoid (3+1)/2*2 = 4 each = 8.
        assert p.optdissim(1.0) == pytest.approx(8.0)
        # Λ-shape peaks at 5: (3+5)/2*2 * 2 = 16.
        assert p.pesdissim(1.0) == pytest.approx(16.0)

    def test_interior_gap_touching_zero(self):
        p = PartialDissim(0.0, 10.0)
        p.add_interval(0.0, 4.0, IntegralResult(0.0, 0.0), 0.0, 1.0)
        p.add_interval(8.0, 10.0, IntegralResult(0.0, 0.0), 1.0, 0.0)
        # vmax=1, gap of 4: legs reach 0 after 1 unit each:
        # triangles 0.5 + 0.5 = 1.
        assert p.optdissim(1.0) == pytest.approx(1.0)

    def test_optdissim_inc(self):
        p = PartialDissim(0.0, 10.0)
        p.add_interval(0.0, 4.0, IntegralResult(7.0, 0.5), 1.0, 1.0)
        # retrieved lower (7 - 0.5) + gap 6 * mindist 2 = 18.5
        assert p.optdissim_inc(2.0) == pytest.approx(18.5)

    def test_mindissim_inc_minimum_of_ingredients(self):
        p = PartialDissim(0.0, 10.0)
        p.add_interval(0.0, 9.0, IntegralResult(100.0, 0.0), 1.0, 1.0)
        # node term: 2 * 10 = 20; candidate term: 100 + 2*1 = 102.
        assert mindissim_inc(2.0, 0.0, 10.0, [p]) == pytest.approx(20.0)
        # with a cheap candidate the candidate term wins
        q = PartialDissim(0.0, 10.0)
        q.add_interval(0.0, 9.0, IntegralResult(1.0, 0.0), 1.0, 1.0)
        assert mindissim_inc(2.0, 0.0, 10.0, [p, q]) == pytest.approx(3.0)

    def test_mindissim_inc_no_candidates(self):
        assert mindissim_inc(3.0, 0.0, 4.0, []) == pytest.approx(12.0)
        assert mindissim_inc(3.0, 0.0, 4.0, None) == pytest.approx(12.0)


class TestLemmas:
    @given(cotemporal_trajectory_pairs(), st.randoms(use_true_random=False))
    @settings(max_examples=150, deadline=None)
    def test_lemma_2_and_3_bracket_exact_dissim(self, pair, rnd):
        """OPTDISSIM <= DISSIM <= PESDISSIM for any partial retrieval
        with the true V_max (Lemmas 2 and 3)."""
        q, t = pair
        exact = dissim_exact(q, t)
        vmax = q.max_speed() + t.max_speed()
        keep = [k for k in range(t.num_segments) if rnd.random() < 0.5]
        partial = build_partial(q, t, keep)
        slack = 1e-6 * max(1.0, exact)
        assert partial.optdissim(vmax) <= exact + slack
        assert partial.pesdissim(vmax) >= exact - slack

    @given(cotemporal_trajectory_pairs(), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_definition_5_lower_bound(self, pair, rnd):
        """OPTDISSIMINC <= DISSIM when mindist really bounds the gap
        distance from below."""
        q, t = pair
        exact = dissim_exact(q, t)
        keep = [k for k in range(t.num_segments) if rnd.random() < 0.5]
        partial = build_partial(q, t, keep)
        # True minimum distance over the gaps (dense sampling, then
        # shrunk to stay a certain lower bound).
        gap_min = None
        for lo, hi, _d1, _d2 in partial.gaps():
            for i in range(33):
                # lo + (hi - lo) can round one ulp past the lifetime end
                at = min(lo + (hi - lo) * i / 32.0, q.t_end, t.t_end)
                d = distance_at(q, t, at)
                gap_min = d if gap_min is None else min(gap_min, d)
        mindist = 0.0 if gap_min is None else max(gap_min - 1e-6, 0.0) * 0.99
        slack = 1e-6 * max(1.0, exact)
        assert partial.optdissim_inc(mindist) <= exact + slack

    @given(cotemporal_trajectory_pairs(), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_bounds_tighten_with_coverage(self, pair, rnd):
        """Adding a retrieved interval never loosens the bracket."""
        q, t = pair
        vmax = q.max_speed() + t.max_speed()
        order = list(range(t.num_segments))
        rnd.shuffle(order)
        partial = PartialDissim(q.t_start, q.t_end)
        prev_opt = partial.optdissim(vmax)
        prev_pes = partial.pesdissim(vmax)
        for k in order:
            seg = t.segment(k)
            total, d_lo, d_hi = segment_dissim(q, seg, seg.ts, seg.te)
            partial.add_interval(seg.ts, seg.te, total, d_lo, d_hi)
            opt = partial.optdissim(vmax)
            pes = partial.pesdissim(vmax)
            # Monotone up to the trapezoid approximation error carried
            # by the retrieved intervals (OPT uses certified lowers,
            # PES certified uppers, so each may give back that much).
            err = partial.retrieved_integral().error_bound
            slack = err + 1e-6 * max(1.0, opt)
            assert opt >= prev_opt - slack
            if pes != float("inf") and prev_pes != float("inf"):
                assert pes <= prev_pes + slack
            prev_opt, prev_pes = opt, pes

    @given(cotemporal_trajectory_pairs())
    @settings(max_examples=60, deadline=None)
    def test_complete_coverage_collapses_bounds(self, pair):
        q, t = pair
        vmax = q.max_speed() + t.max_speed()
        partial = build_partial(q, t, range(t.num_segments))
        assert partial.is_complete()
        exact = dissim_exact(q, t)
        width = partial.retrieved_integral().error_bound
        slack = 1e-6 * max(1.0, exact)
        assert partial.pesdissim(vmax) - partial.optdissim(vmax) <= width + slack
