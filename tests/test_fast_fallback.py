"""Lazy-numpy behaviour of repro.distance.fast and the quality
experiment's pure-Python fallback."""

import builtins

import pytest

from repro.datagen import generate_trucks
from repro.distance import fast
from repro.distance.dtw import dtw_distance
from repro.distance.edr import edr_distance
from repro.distance.lcss import lcss_distance
from repro.experiments import quality

MEASURES = ("LCSS", "EDR", "LCSS-I", "EDR-I", "DTW")


@pytest.fixture()
def no_numpy(monkeypatch):
    """Make ``import numpy`` fail and clear the memoised module."""
    real_import = builtins.__import__

    def blocked(name, *args, **kwargs):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy is not installed (simulated)")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(fast, "_np", None)
    monkeypatch.setattr(builtins, "__import__", blocked)
    yield
    fast._np = None  # don't leak the blocked state to other tests


@pytest.fixture(scope="module")
def world():
    dataset = generate_trucks(
        5, samples_per_truck=25, seed=29, length_variation=0.5
    ).normalised()
    eps = dataset.max_spatial_std() / 4.0
    return dataset, eps


class TestLazyImport:
    def test_have_numpy_true_in_test_env(self):
        pytest.importorskip("numpy")
        assert fast.have_numpy()

    def test_import_error_is_actionable(self, no_numpy):
        assert not fast.have_numpy()
        with pytest.raises(ImportError, match="pip install numpy"):
            fast._numpy()

    def test_module_functions_raise_without_numpy(self, no_numpy, world):
        dataset, _ = world
        with pytest.raises(ImportError, match="optional"):
            fast.coords(next(iter(dataset)))


class TestQualityFallback:
    def test_fast_equals_reference_values(self, world):
        pytest.importorskip("numpy")
        dataset, eps = world
        trs = list(dataset)[:3]
        for q in trs:
            qa = fast.coords(q)
            for tr in trs:
                ta = fast.coords(tr)
                assert fast.lcss_distance_fast(qa, ta, eps) == pytest.approx(
                    lcss_distance(q, tr, eps), abs=1e-12
                )
                assert fast.edr_distance_fast(qa, ta, eps) == edr_distance(
                    q, tr, eps
                )
                assert fast.dtw_distance_fast(qa, ta) == pytest.approx(
                    dtw_distance(q, tr), abs=1e-9
                )

def test_quality_winners_match_between_paths(world, monkeypatch):
    """The experiment picks identical winners with and without numpy."""
    dataset, eps = world
    query = next(iter(dataset))
    fast_winners = {
        m: quality._most_similar_dp(m, query, dataset, eps) for m in MEASURES
    }

    real_import = builtins.__import__

    def blocked(name, *args, **kwargs):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy is not installed (simulated)")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(fast, "_np", None)
    monkeypatch.setattr(builtins, "__import__", blocked)
    slow_winners = {
        m: quality._most_similar_dp(m, query, dataset, eps) for m in MEASURES
    }
    monkeypatch.undo()
    fast._np = None
    assert slow_winners == fast_winners
