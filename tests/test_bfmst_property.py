"""Hypothesis-driven whole-system property: BFMST over arbitrary
well-formed worlds equals the exhaustive exact scan.

This complements the seeded random worlds in ``test_bfmst.py`` with
adversarially shrunken inputs — hypothesis loves to find degenerate
geometry (coincident points, zero speeds, needle-thin boxes) — plus a
GSTD randomized oracle sweep (realistic correlated motion) over both
index backends and k in {1, 5, 10}.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    RTree3D,
    TBTree,
    Trajectory,
    TrajectoryDataset,
    generate_gstd,
    make_workload,
)
from repro.search.bfmst import bfmst_search
from repro.search.linear_scan import linear_scan_kmst

coord = st.floats(min_value=-50.0, max_value=50.0)


def assert_matches_oracle(got, want):
    """BFMST answers equal the exact-scan oracle: same ids in the same
    order, with each certified interval covering the oracle's DISSIM —
    except that *exact ties* may legitimately reorder."""
    got_ids = [m.trajectory_id for m in got]
    want_ids = [m.trajectory_id for m in want]
    if got_ids != want_ids:
        # Only acceptable difference: exact ties reordered.
        by_id = {m.trajectory_id: m for m in want}
        assert set(got_ids) == set(want_ids)
        for g in got:
            w = by_id[g.trajectory_id]
            assert g.lower - 1e-7 <= w.dissim <= g.upper + 1e-7
        values = [by_id[i].dissim for i in got_ids]
        assert values == pytest.approx(sorted(values), abs=1e-7)
    else:
        for g, w in zip(got, want):
            slack = 1e-7 * max(1.0, w.dissim)
            assert g.lower - slack <= w.dissim <= g.upper + slack


@st.composite
def worlds(draw):
    """A dataset of 3-7 trajectories over a common [0, T] window plus a
    query window inside it."""
    total = draw(st.floats(min_value=2.0, max_value=40.0))
    n_objects = draw(st.integers(min_value=3, max_value=7))
    dataset = TrajectoryDataset()
    for oid in range(n_objects):
        n = draw(st.integers(min_value=2, max_value=7))
        interior = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.05, max_value=0.95),
                    min_size=n - 2,
                    max_size=n - 2,
                    unique=True,
                )
            )
        )
        times = [0.0, *[f * total for f in interior], total]
        # drop accidental duplicates after scaling
        times = sorted(set(times))
        pts = [
            (draw(coord), draw(coord), t)
            for t in times
        ]
        dataset.add(Trajectory(oid, pts))
    f_lo = draw(st.floats(min_value=0.0, max_value=0.6))
    f_len = draw(st.floats(min_value=0.2, max_value=0.39))
    period = (f_lo * total, (f_lo + f_len) * total)
    source = dataset[draw(st.integers(min_value=0, max_value=n_objects - 1))]
    query = source.sliced(*period).with_id(-1)
    k = draw(st.integers(min_value=1, max_value=n_objects))
    return dataset, query, period, k


@given(worlds())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_bfmst_equals_exact_scan_on_arbitrary_worlds(world):
    dataset, query, period, k = world
    want = linear_scan_kmst(dataset, query, period, k=k, exact=True)
    for cls in (RTree3D, TBTree):
        index = cls(page_size=512)
        index.bulk_insert(dataset)
        index.finalize()
        got, _stats = bfmst_search(index, query, period, k=k)
        assert_matches_oracle(got, want)


@pytest.mark.parametrize("tree_cls", (RTree3D, TBTree), ids=lambda c: c.__name__)
@pytest.mark.parametrize("seed", (11, 23, 47))
def test_bfmst_matches_exact_scan_on_gstd(seed, tree_cls):
    """Randomized GSTD oracle: correlated motion at a scale the shrunken
    hypothesis worlds never reach, across seeds, both backends and the
    paper's k range.  The oracle is the exhaustive exact linear scan."""
    dataset = generate_gstd(30, samples_per_object=25, seed=seed)
    (query, period), = make_workload(dataset, 1, 0.15, seed=seed)
    index = tree_cls(page_size=512)
    index.bulk_insert(dataset)
    index.finalize()
    for k in (1, 5, 10):
        want = linear_scan_kmst(dataset, query, period, k=k, exact=True)
        got, _stats = bfmst_search(index, query, period, k=k)
        assert len(got) == min(k, len(want))
        assert_matches_oracle(got, want)
