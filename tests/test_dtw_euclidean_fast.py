"""Tests for DTW, lock-step Euclidean, and the vectorised fast paths
(which must agree exactly with the pure-Python references)."""

import math

import pytest
from hypothesis import given, settings

from repro import Trajectory, dtw_distance, edr_distance, euclidean_distance, lcss_distance
from repro.distance import mean_euclidean_distance
from repro.distance.fast import (
    coords,
    dtw_distance_fast,
    edr_distance_fast,
    lcss_distance_fast,
)
from repro.exceptions import QueryError

from conftest import trajectories


def tr(points, id_=0):
    return Trajectory(id_, points)


class TestDTW:
    def test_identical_is_zero(self):
        a = tr([(0, 0, 0), (1, 1, 1), (2, 0, 2)])
        assert dtw_distance(a, a.with_id(1)) == pytest.approx(0.0)

    def test_warps_across_lengths(self):
        a = tr([(0, 0, 0), (1, 0, 1)])
        b = tr([(0, 0, 0), (0, 0, 1), (0, 0, 2), (1, 0, 3)], id_=1)
        # The three zeros align with a's first sample at cost 0, the
        # final (1, 0) matches at cost 0.
        assert dtw_distance(a, b) == pytest.approx(0.0)

    def test_known_value(self):
        a = tr([(0, 0, 0), (0, 0, 1)])
        b = tr([(3, 4, 0), (3, 4, 1)], id_=1)
        assert dtw_distance(a, b) == pytest.approx(10.0)

    def test_band_too_narrow_rejected(self):
        a = tr([(0, 0, 0), (1, 1, 1)])
        b = tr([(0, 0, 0), (1, 1, 1), (2, 2, 2), (3, 3, 3), (4, 4, 4)], id_=1)
        with pytest.raises(ValueError):
            dtw_distance(a, b, band=1)

    def test_band_wide_enough_matches_unbanded(self):
        a = tr([(0, 0, 0), (1, 0, 1), (2, 1, 2)])
        b = tr([(0, 1, 0), (2, 0, 1), (2, 2, 2)], id_=1)
        assert dtw_distance(a, b, band=3) == pytest.approx(dtw_distance(a, b))

    @given(trajectories(id_=0), trajectories(id_=1))
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, a, b):
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))


class TestEuclidean:
    def test_requires_equal_lengths(self):
        a = tr([(0, 0, 0), (1, 1, 1)])
        b = tr([(0, 0, 0), (1, 1, 1), (2, 2, 2)], id_=1)
        with pytest.raises(QueryError):
            euclidean_distance(a, b)

    def test_known_value(self):
        a = tr([(0, 0, 0), (0, 0, 1)])
        b = tr([(3, 4, 0), (0, 1, 1)], id_=1)
        assert euclidean_distance(a, b) == pytest.approx(6.0)
        assert mean_euclidean_distance(a, b) == pytest.approx(3.0)

    @given(trajectories(min_samples=4, max_samples=4, id_=0))
    def test_self_distance_zero(self, a):
        assert euclidean_distance(a, a.with_id(1)) == 0.0


class TestFastAgreesWithReference:
    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        pytest.importorskip("numpy")
    @given(trajectories(id_=0), trajectories(id_=1))
    @settings(max_examples=80, deadline=None)
    def test_lcss_fast(self, a, b):
        for eps in (0.01, 0.5, 5.0):
            assert lcss_distance_fast(coords(a), coords(b), eps) == pytest.approx(
                lcss_distance(a, b, eps)
            )

    @given(trajectories(id_=0), trajectories(id_=1))
    @settings(max_examples=80, deadline=None)
    def test_edr_fast(self, a, b):
        for eps in (0.01, 0.5, 5.0):
            assert edr_distance_fast(coords(a), coords(b), eps) == edr_distance(
                a, b, eps
            )

    @given(trajectories(id_=0), trajectories(id_=1))
    @settings(max_examples=40, deadline=None)
    def test_dtw_fast(self, a, b):
        got = dtw_distance_fast(coords(a), coords(b))
        want = dtw_distance(a, b)
        assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9)
