"""Tests for trajectory analytics and exact distance profiles."""

import math

import pytest
from hypothesis import given, settings

from repro import (
    Trajectory,
    dissim_exact,
    distance_at,
    distance_profile,
)
from repro.exceptions import TrajectoryError
from repro.trajectory import (
    cumulative_length_at,
    detect_stops,
    heading_profile,
    sampling_stats,
    speed_profile,
    total_turning,
)

from conftest import cotemporal_trajectory_pairs, straight_line


class TestSpeedHeading:
    def test_speed_profile_values(self):
        tr = Trajectory(1, [(0, 0, 0), (3, 4, 1), (3, 4, 2)])
        profile = speed_profile(tr)
        assert profile == [(0.5, pytest.approx(5.0)), (1.5, 0.0)]

    def test_heading_profile_skips_stationary(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 0, 1), (1, 0, 2), (1, 1, 3)])
        headings = heading_profile(tr)
        assert len(headings) == 2
        assert headings[0][1] == pytest.approx(0.0)
        assert headings[1][1] == pytest.approx(math.pi / 2)

    def test_total_turning_straight_line_zero(self):
        tr = straight_line(1, 0.0, 0.0, 1.0, 0.5, [0, 1, 2, 3, 4])
        assert total_turning(tr) == pytest.approx(0.0, abs=1e-12)

    def test_total_turning_right_angle(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 0, 1), (1, 1, 2)])
        assert total_turning(tr) == pytest.approx(math.pi / 2)

    def test_total_turning_wraps_correctly(self):
        # heading +170deg then -170deg: the short way round is 20deg.
        a = math.radians(170)
        tr = Trajectory(
            1,
            [
                (0, 0, 0),
                (math.cos(a), math.sin(a), 1),
                (math.cos(a) + math.cos(-a), math.sin(a) + math.sin(-a), 2),
            ],
        )
        assert total_turning(tr) == pytest.approx(math.radians(20), abs=1e-9)


class TestStops:
    def test_detects_parked_interval(self):
        tr = Trajectory(
            1,
            [(0, 0, 0), (5, 0, 1), (5, 0, 5), (5.01, 0, 6), (10, 0, 7)],
        )
        stops = detect_stops(tr, max_speed=0.1)
        assert len(stops) == 1
        stop = stops[0]
        assert stop.t_lo == 1.0 and stop.t_hi == 6.0
        assert stop.duration == 5.0
        assert stop.centre.x == pytest.approx(5.0, abs=0.01)

    def test_min_duration_filters_short_pauses(self):
        tr = Trajectory(
            1, [(0, 0, 0), (5, 0, 1), (5, 0, 1.5), (10, 0, 2.5)]
        )
        assert detect_stops(tr, 0.1, min_duration=1.0) == []
        assert len(detect_stops(tr, 0.1, min_duration=0.2)) == 1

    def test_no_stops_on_constant_motion(self):
        tr = straight_line(1, 0.0, 0.0, 2.0, 0.0, [0, 1, 2, 3])
        assert detect_stops(tr, 0.5) == []

    def test_negative_threshold_rejected(self):
        tr = straight_line(1, 0.0, 0.0, 1.0, 0.0, [0, 1])
        with pytest.raises(TrajectoryError):
            detect_stops(tr, -1.0)

    def test_stop_at_trajectory_end(self):
        tr = Trajectory(1, [(0, 0, 0), (5, 0, 1), (5, 0, 9)])
        stops = detect_stops(tr, 0.01)
        assert len(stops) == 1
        assert stops[0].t_hi == 9.0


class TestSamplingStats:
    def test_regular_clock(self):
        tr = straight_line(1, 0.0, 0.0, 1.0, 0.0, [0, 1, 2, 3])
        st = sampling_stats(tr)
        assert st.samples == 4
        assert st.min_interval == st.max_interval == st.mean_interval == 1.0
        assert st.irregularity == 1.0

    def test_irregular_clock(self):
        tr = Trajectory(1, [(0, 0, 0.0), (0, 0, 0.5), (0, 0, 2.5)])
        st = sampling_stats(tr)
        assert st.min_interval == 0.5
        assert st.max_interval == 2.0
        assert st.irregularity == 4.0


class TestCumulativeLength:
    def test_endpoints(self):
        tr = Trajectory(1, [(0, 0, 0), (3, 4, 1), (3, 4, 2)])
        assert cumulative_length_at(tr, 0.0) == 0.0
        assert cumulative_length_at(tr, 2.0) == pytest.approx(5.0)

    def test_partial_segment(self):
        tr = straight_line(1, 0.0, 0.0, 2.0, 0.0, [0, 10])
        assert cumulative_length_at(tr, 5.0) == pytest.approx(10.0)

    def test_outside_lifetime_rejected(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 1, 1)])
        with pytest.raises(TrajectoryError):
            cumulative_length_at(tr, 2.0)


class TestDistanceProfile:
    def test_value_matches_distance_at(self):
        a = Trajectory(1, [(0, 0, 0), (5, 2, 4), (1, 1, 10)])
        b = Trajectory(2, [(1, 1, 0), (2, 2, 3), (0, 5, 10)])
        profile = distance_profile(a, b)
        for i in range(21):
            t = 10.0 * i / 20.0
            assert profile.value_at(t) == pytest.approx(
                distance_at(a, b, t), abs=1e-9
            )

    def test_integral_is_dissim(self):
        a = Trajectory(1, [(0, 0, 0), (5, 2, 4), (1, 1, 10)])
        b = Trajectory(2, [(1, 1, 0), (2, 2, 3), (0, 5, 10)])
        profile = distance_profile(a, b)
        assert profile.integral() == pytest.approx(dissim_exact(a, b))

    @given(cotemporal_trajectory_pairs())
    @settings(max_examples=60, deadline=None)
    def test_integral_property(self, pair):
        q, t = pair
        profile = distance_profile(q, t)
        assert profile.integral() == pytest.approx(
            dissim_exact(q, t), rel=1e-9, abs=1e-9
        )

    def test_minimum_finds_closest_approach(self):
        # parked at origin; flyby passes through at t = 5.
        q = straight_line(1, 0.0, 0.0, 0.0, 0.0, [0.0, 10.0])
        t = straight_line(2, -5.0, 0.0, 1.0, 0.0, [0.0, 10.0])
        profile = distance_profile(q, t)
        d, at = profile.minimum()
        assert d == pytest.approx(0.0, abs=1e-9)
        assert at == pytest.approx(5.0, abs=1e-9)

    def test_maximum_at_boundary(self):
        q = straight_line(1, 0.0, 0.0, 0.0, 0.0, [0.0, 10.0])
        t = straight_line(2, -5.0, 0.0, 1.0, 0.0, [0.0, 10.0])
        d, at = distance_profile(q, t).maximum()
        assert d == pytest.approx(5.0)
        assert at in (0.0, 10.0)

    def test_mean_distance(self):
        a = straight_line(1, 0.0, 0.0, 1.0, 0.0, [0.0, 10.0])
        b = straight_line(2, 0.0, 3.0, 1.0, 0.0, [0.0, 10.0])
        assert distance_profile(a, b).mean_distance() == pytest.approx(3.0)

    def test_sample_grid(self):
        a = straight_line(1, 0.0, 0.0, 1.0, 0.0, [0.0, 10.0])
        b = straight_line(2, 0.0, 3.0, 1.0, 0.0, [0.0, 10.0])
        pts = distance_profile(a, b).sample(10)
        assert len(pts) == 11
        assert pts[0][0] == 0.0 and pts[-1][0] == 10.0
        assert all(d == pytest.approx(3.0) for _t, d in pts)

    def test_value_outside_profile_rejected(self):
        a = straight_line(1, 0.0, 0.0, 1.0, 0.0, [0.0, 10.0])
        profile = distance_profile(a, a.with_id(2))
        with pytest.raises(ValueError):
            profile.value_at(11.0)
