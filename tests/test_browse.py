"""Tests for incremental MST browsing (distance browsing)."""

import itertools
import random

import pytest

from repro import RTree3D, TBTree, bfmst_browse, generate_gstd
from repro.search.linear_scan import linear_scan_kmst
from repro.datagen import make_query
from repro.exceptions import QueryError, TemporalCoverageError
from repro.trajectory import TrajectoryDataset


@pytest.fixture(scope="module", params=["rtree", "tbtree"])
def browse_setup(request, small_dataset):
    cls = RTree3D if request.param == "rtree" else TBTree
    index = cls()
    index.bulk_insert(small_dataset)
    index.finalize()
    return index, small_dataset


class TestBrowsing:
    def test_full_enumeration_matches_exact_scan(self, browse_setup):
        index, dataset = browse_setup
        rng = random.Random(3)
        query, period = make_query(dataset, 0.15, rng)
        browsed = list(bfmst_browse(index, query, period))
        want = linear_scan_kmst(
            dataset, query, period, k=len(dataset), exact=True
        )
        assert [m.trajectory_id for m in browsed] == [
            m.trajectory_id for m in want
        ]
        for b, w in zip(browsed, want):
            assert b.dissim == pytest.approx(w.dissim, rel=1e-9, abs=1e-9)

    def test_prefix_equals_kmst(self, browse_setup):
        index, dataset = browse_setup
        rng = random.Random(4)
        query, period = make_query(dataset, 0.1, rng)
        first5 = list(itertools.islice(bfmst_browse(index, query, period), 5))
        want = linear_scan_kmst(dataset, query, period, k=5, exact=True)
        assert [m.trajectory_id for m in first5] == [
            m.trajectory_id for m in want
        ]

    def test_yields_in_nondecreasing_order(self, browse_setup):
        index, dataset = browse_setup
        rng = random.Random(5)
        query, period = make_query(dataset, 0.2, rng)
        values = [m.dissim for m in bfmst_browse(index, query, period)]
        assert values == sorted(values)

    def test_lazy_consumption_touches_fewer_nodes(self, browse_setup):
        """Taking just the best match must read far fewer nodes than
        enumerating everything."""
        index, dataset = browse_setup
        rng = random.Random(6)
        query, period = make_query(dataset, 0.05, rng)
        before = index.node_accesses
        gen = bfmst_browse(index, query, period)
        next(gen)
        first_cost = index.node_accesses - before
        gen.close()
        before = index.node_accesses
        list(bfmst_browse(index, query, period))
        full_cost = index.node_accesses - before
        assert first_cost < full_cost

    def test_exclude_ids(self, browse_setup):
        index, dataset = browse_setup
        rng = random.Random(7)
        query, period = make_query(dataset, 0.1, rng)
        best = next(iter(bfmst_browse(index, query, period)))
        second = next(
            iter(
                bfmst_browse(
                    index, query, period, exclude_ids={best.trajectory_id}
                )
            )
        )
        assert second.trajectory_id != best.trajectory_id

    def test_all_yields_marked_exact_for_covering_data(self, browse_setup):
        index, dataset = browse_setup
        rng = random.Random(8)
        query, period = make_query(dataset, 0.1, rng)
        for m in bfmst_browse(index, query, period):
            assert m.exact
            assert m.error_bound == 0.0

    def test_validation(self, browse_setup):
        index, dataset = browse_setup
        rng = random.Random(9)
        query, period = make_query(dataset, 0.1, rng)
        with pytest.raises(QueryError):
            next(bfmst_browse(index, query, (period[1], period[0])))
        with pytest.raises(TemporalCoverageError):
            next(bfmst_browse(index, query, (period[0] - 1e6, period[1])))


class TestNonCoveringCandidates:
    def test_partial_coverage_yields_upper_bounds_last(self):
        from repro import Trajectory

        full_a = Trajectory(1, [(0.0, 0.0, 0.0), (1.0, 0.0, 10.0)])
        full_b = Trajectory(2, [(0.0, 5.0, 0.0), (1.0, 5.0, 10.0)])
        half = Trajectory(3, [(0.0, 0.1, 0.0), (1.0, 0.1, 5.0)])
        index = RTree3D()
        for tr in (full_a, full_b, half):
            index.insert(tr)
        index.finalize()
        query = Trajectory(-1, [(0.0, 0.0, 0.0), (1.0, 0.0, 10.0)])
        out = list(bfmst_browse(index, query, (0.0, 10.0)))
        assert [m.trajectory_id for m in out] == [1, 2, 3]
        assert out[0].exact and out[1].exact
        assert not out[2].exact  # certified upper bound only
