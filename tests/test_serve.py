"""The serving tier: wire formats, admission control, answer fidelity.

Most tests run a real :class:`~repro.serve.BackgroundServer` over a
real engine and speak actual HTTP through :class:`ServeClient` — the
served path is only trusted if its answers are byte-identical to
in-process :meth:`QueryEngine.execute`.  The failure-mode tests
(deadline, backpressure) use stub engines so the timing is
deterministic.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MBR2D, Point, RTree3D, generate_gstd, make_workload
from repro.engine import EngineConfig, QueryEngine
from repro.exceptions import DeadlineExceeded, QueryError, ServeError
from repro.search.results import SearchResult, SearchStats
from repro.search.spec import QuerySpec
from repro.serve import (
    AdmissionController,
    BackgroundServer,
    ResultCache,
    ServeClient,
    ServeConfig,
    TokenBucket,
)
from repro.serve.client import ServeRejected

from conftest import trajectories


# ----------------------------------------------------------------------
# wire formats (no server involved)
# ----------------------------------------------------------------------
class TestWireRoundTrips:
    @given(
        query=trajectories(id_=-1),
        k=st.integers(min_value=1, max_value=10),
        deadline_ms=st.one_of(
            st.none(), st.floats(min_value=1.0, max_value=60_000.0)
        ),
        kernels=st.sampled_from([None, "auto", "numpy", "python"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_query_spec_round_trips(self, query, k, deadline_ms, kernels):
        period = (query.t_start, query.t_end)
        spec = QuerySpec(
            "mst", query, period, k=k,
            options={"exclude_ids": frozenset({3, 1})},
            kernels=kernels, deadline_ms=deadline_ms,
        )
        wire = spec.to_json()
        revived = QuerySpec.from_json(wire)
        assert revived.to_json() == wire
        assert revived.cache_key() == spec.cache_key()
        assert revived.k == k
        assert revived.options["exclude_ids"] == frozenset({3, 1})
        got = revived.query
        assert [(p.x, p.y, p.t) for p in got] == [
            (p.x, p.y, p.t) for p in query
        ]

    def test_cache_key_ignores_the_deadline_budget(self):
        a = QuerySpec("range", MBR2D(0, 0, 1, 1),
                      (0.0, 1.0), deadline_ms=5.0)
        b = QuerySpec("range", MBR2D(0, 0, 1, 1),
                      (0.0, 1.0), deadline_ms=5000.0)
        assert a.cache_key() == b.cache_key()
        assert a.to_json() != b.to_json()

    @pytest.mark.parametrize(
        "mutation",
        [
            {"spec": 2},
            {"kind": "teleport"},
            {"k": 0},
            {"k": True},
            {"period": [5.0, 1.0]},
            {"kernels": "fortran"},
            {"deadline_ms": -1.0},
            {"query": {"type": "wormhole"}},
            {"options": {"k": 2}},
        ],
    )
    def test_malformed_specs_are_rejected(self, mutation):
        doc = QuerySpec(
            "nn", Point(0.0, 0.0), (0.0, 1.0)
        ).as_dict()
        doc.update(mutation)
        with pytest.raises(QueryError):
            QuerySpec.from_dict(doc)


# ----------------------------------------------------------------------
# a real served engine
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served_world():
    dataset = generate_gstd(15, samples_per_object=15, seed=11)
    index = RTree3D(page_size=1024)
    index.bulk_insert(dataset)
    index.finalize()
    engine = QueryEngine(
        index, dataset, config=EngineConfig(executor="thread")
    )
    config = ServeConfig(
        port=0, workers=2, max_body_bytes=64 * 1024, quota_rps=0.0
    )
    with BackgroundServer(engine, config) as bg:
        yield dataset, engine, bg
    engine.close()


def _specs(dataset, n=3, seed=2):
    for i, (query, period) in enumerate(
        make_workload(dataset, n, 0.2, seed=seed)
    ):
        yield QuerySpec("mst", query, period, k=3 + i)


class TestServedAnswers:
    def test_served_equals_in_process_byte_for_byte(self, served_world):
        dataset, engine, bg = served_world
        with ServeClient(*bg.address) as client:
            for spec in _specs(dataset):
                served = client.query(spec)
                inproc = engine.execute(spec)
                assert served.answer_json() == inproc.answer_json()
                assert served.spec.cache_key() == spec.cache_key()

    def test_result_envelope_round_trips(self, served_world):
        dataset, engine, _bg = served_world
        spec = next(_specs(dataset))
        result = engine.execute(spec)
        revived = SearchResult.from_json(result.to_json())
        assert revived.answer_json() == result.answer_json()
        assert revived.stats.node_accesses == result.stats.node_accesses
        assert revived.spec.cache_key() == spec.cache_key()

    def test_hot_query_hits_the_cache(self, served_world):
        dataset, _engine, bg = served_world
        spec = QuerySpec(
            "mst", *next(iter(make_workload(dataset, 1, 0.25, seed=33))), k=2
        )
        with ServeClient(*bg.address) as client:
            first = client.query(spec)
            again = client.query(spec)
            assert first.served_from_cache is False
            assert again.served_from_cache is True
            assert again.answer_json() == first.answer_json()
            counters = client.stats()["serve"]["counters"]
            assert counters["serve.cache.hits"] >= 1

    def test_deadline_budget_on_the_spec_is_clamped_not_rejected(
        self, served_world
    ):
        dataset, _engine, bg = served_world
        query, period = next(iter(make_workload(dataset, 1, 0.2, seed=5)))
        spec = QuerySpec(
            "mst", query, period, k=2, deadline_ms=10_000_000.0
        )
        with ServeClient(*bg.address) as client:
            assert len(client.query(spec).matches) > 0


class TestRejectionPaths:
    def test_malformed_body_is_400(self, served_world):
        *_x, bg = served_world
        with ServeClient(*bg.address) as client:
            status, _headers, payload = client.query_raw(b"{broken")
            assert status == 400
            assert b"malformed" in payload

    def test_wrong_spec_version_is_400(self, served_world):
        *_x, bg = served_world
        with ServeClient(*bg.address) as client:
            status, _headers, payload = client.query_raw(b'{"spec": 99}')
            assert status == 400

    def test_oversized_body_is_413(self, served_world):
        *_x, bg = served_world
        with ServeClient(*bg.address) as client:
            status, _headers, payload = client.query_raw(b"x" * (80 * 1024))
            assert status == 413
            assert b"too_large" in payload

    def test_unroutable_requests(self, served_world):
        *_x, bg = served_world
        with ServeClient(*bg.address) as client:
            status, _h, _p = client._request("GET", "/nope")
            assert status == 404
            status, _h, _p = client._request("GET", "/v1/query")
            assert status == 405

    def test_engine_rejection_is_422(self, served_world):
        dataset, _engine, bg = served_world
        query, period = next(iter(make_workload(dataset, 1, 0.2, seed=6)))
        # the frozen QueryEngine owns a dataset, but k on a range
        # query is a spec-level contradiction -> QueryError -> 422
        spec = QuerySpec("mst", query, period, k=2)
        doc = spec.as_dict()
        doc["kind"] = "time_relaxed"
        doc["period"] = [0.0, 1.0]  # time_relaxed takes no period
        with ServeClient(*bg.address) as client:
            status, _headers, payload = client.query_raw(
                __import__("json").dumps(doc).encode()
            )
            assert status == 422
            assert b"rejected" in payload

    def test_stats_and_health_endpoints(self, served_world):
        *_x, bg = served_world
        with ServeClient(*bg.address) as client:
            assert client.health() is True
            doc = client.stats()
            assert doc["engine"]["type"] == "QueryEngine"
            assert doc["config"]["max_inflight"] == 64
            assert doc["draining"] is False
            assert "serve.requests" in doc["serve"]["counters"]


# ----------------------------------------------------------------------
# deterministic failure modes via stub engines
# ----------------------------------------------------------------------
class _StubEngine:
    """Engine protocol stand-in with controllable execute()."""

    def __init__(self):
        self._signature = ("stub", 1)

    def signature(self):
        return self._signature

    def execute(self, spec, *, deadline=None):
        return SearchResult(
            algorithm="stub", matches=[], stats=SearchStats(), spec=spec
        )


class _DeadlineEngine(_StubEngine):
    def execute(self, spec, *, deadline=None):
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded("deadline expired before the query started")
        raise DeadlineExceeded("query exceeded its deadline budget")


class _BlockingEngine(_StubEngine):
    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.entered = threading.Semaphore(0)

    def execute(self, spec, *, deadline=None):
        self.entered.release()
        assert self.gate.wait(timeout=30.0), "test gate never opened"
        return super().execute(spec, deadline=deadline)


def _any_spec(k=1):
    return QuerySpec("nn", Point(0.0, 0.0), (0.0, 1.0), k=k)


class TestDeadlines:
    def test_deadline_exceeded_maps_to_504(self):
        with BackgroundServer(
            _DeadlineEngine(), ServeConfig(port=0, workers=1)
        ) as bg:
            with ServeClient(*bg.address) as client:
                with pytest.raises(ServeRejected) as info:
                    client.query(_any_spec())
                assert info.value.status == 504
                assert info.value.reason == "deadline_exceeded"
                counters = client.stats()["serve"]["counters"]
                assert counters["serve.deadline_misses"] == 1

    def test_real_engine_enforces_a_tiny_budget(self, served_world):
        dataset, _engine, bg = served_world
        query, period = next(iter(make_workload(dataset, 1, 0.2, seed=7)))
        spec = QuerySpec("mst", query, period, k=2, deadline_ms=0.001)
        with ServeClient(*bg.address) as client:
            with pytest.raises(ServeRejected) as info:
                client.query(spec)
            assert info.value.status == 504


class TestBackpressure:
    def test_overload_rejects_immediately_and_recovers(self):
        engine = _BlockingEngine()
        config = ServeConfig(
            port=0, workers=2, max_inflight=2, cache_entries=0
        )
        with BackgroundServer(engine, config) as bg:
            host, port = bg.address

            def one_request(i):
                with ServeClient(host, port, client_id=f"c{i}") as client:
                    try:
                        return ("ok", client.query(_any_spec()))
                    except ServeRejected as exc:
                        return ("rejected", exc)

            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                futures = [pool.submit(one_request, i) for i in range(2)]
                # both slots must be occupied before the burst
                assert engine.entered.acquire(timeout=10.0)
                assert engine.entered.acquire(timeout=10.0)
                burst = [pool.submit(one_request, 10 + i) for i in range(6)]
                rejected = [f.result(timeout=10.0) for f in burst]
                # every extra request was shed *while* the slots were
                # still blocked -- nothing queued behind them
                assert all(kind == "rejected" for kind, _ in rejected)
                assert all(
                    exc.status == 429 and exc.reason == "overload"
                    for _, exc in rejected
                )
                engine.gate.set()
                admitted = [f.result(timeout=10.0) for f in futures]
                assert all(kind == "ok" for kind, _ in admitted)

            with ServeClient(host, port) as client:
                counters = client.stats()["serve"]["counters"]
                assert counters["serve.rejected.overload"] == 6
                assert client.stats()["inflight"] == 0

    def test_quota_rejections_carry_retry_after(self):
        config = ServeConfig(
            port=0, workers=1, quota_rps=0.5, quota_burst=1,
            cache_entries=0,
        )
        with BackgroundServer(_StubEngine(), config) as bg:
            with ServeClient(*bg.address, client_id="greedy") as client:
                client.query(_any_spec())
                with pytest.raises(ServeRejected) as info:
                    client.query(_any_spec())
                assert info.value.status == 429
                assert info.value.reason == "quota"
                assert info.value.retry_after > 0
            # a different client id has its own bucket
            with ServeClient(*bg.address, client_id="other") as client:
                assert client.query(_any_spec()).algorithm == "stub"

    def test_drained_server_stops_accepting(self):
        bg = BackgroundServer(_StubEngine(), ServeConfig(port=0, workers=1))
        bg.start()
        host, port = bg.address
        with ServeClient(host, port) as client:
            client.query(_any_spec())
        bg.stop()
        with pytest.raises(ServeError):
            with ServeClient(host, port, timeout=2.0) as client:
                client.query(_any_spec())


# ----------------------------------------------------------------------
# admission / cache units
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2, now=clock[0])
        assert bucket.acquire(0.0) == 0.0
        assert bucket.acquire(0.0) == 0.0
        wait = bucket.acquire(0.0)
        assert wait == pytest.approx(0.5)
        assert bucket.acquire(0.5) == 0.0

    def test_controller_lru_caps_client_table(self):
        ctl = AdmissionController(
            4, quota_rps=1.0, quota_burst=1, max_clients=2
        )
        assert ctl.check_quota("a") == 0.0
        assert ctl.check_quota("b") == 0.0
        assert ctl.check_quota("c") == 0.0  # evicts "a"
        assert ctl.check_quota("a") == 0.0  # fresh bucket again
        assert len(ctl._buckets) == 2

    def test_inflight_slots(self):
        ctl = AdmissionController(2)
        assert ctl.try_admit() and ctl.try_admit()
        assert not ctl.try_admit()
        ctl.release()
        assert ctl.try_admit()


class TestResultCache:
    def test_signature_change_invalidates(self):
        cache = ResultCache(4)
        cache.put(("gen", 1), "key", b"old")
        assert cache.get(("gen", 1), "key") == b"old"
        assert cache.get(("gen", 2), "key") is None

    def test_lru_eviction_and_disable(self):
        cache = ResultCache(2)
        cache.put((1,), "a", b"a")
        cache.put((1,), "b", b"b")
        assert cache.get((1,), "a") == b"a"  # refresh "a"
        cache.put((1,), "c", b"c")  # evicts "b"
        assert cache.get((1,), "b") is None
        assert cache.get((1,), "a") == b"a"
        disabled = ResultCache(0)
        disabled.put((1,), "a", b"a")
        assert disabled.get((1,), "a") is None
