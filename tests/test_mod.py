"""Tests for the MovingObjectDatabase facade."""

import random

import pytest

from repro import MovingObjectDatabase, Trajectory, generate_gstd
from repro.datagen import make_query
from repro.exceptions import QueryError
from repro.geometry import MBR2D, Point
from repro.search import nearest_neighbours_brute_force, range_query_brute_force
from repro.search.linear_scan import linear_scan_kmst


@pytest.fixture(scope="module")
def mod():
    db = MovingObjectDatabase(tree="rtree")
    db.add_all(generate_gstd(25, samples_per_object=40, seed=33))
    return db.freeze()


class TestLifecycle:
    def test_unknown_tree_rejected(self):
        with pytest.raises(QueryError):
            MovingObjectDatabase(tree="btree")

    def test_query_before_freeze_rejected(self):
        db = MovingObjectDatabase()
        db.add(Trajectory(1, [(0, 0, 0), (1, 1, 1)]))
        with pytest.raises(QueryError):
            db.range(MBR2D(0, 0, 1, 1), 0, 1)

    def test_freeze_empty_rejected(self):
        with pytest.raises(QueryError):
            MovingObjectDatabase().freeze()

    def test_double_freeze_rejected(self, mod):
        with pytest.raises(QueryError):
            mod.freeze()

    def test_add_after_freeze_rejected(self, mod):
        with pytest.raises(QueryError):
            mod.add(Trajectory(999, [(0, 0, 0), (1, 1, 1)]))

    def test_len_and_describe(self, mod):
        assert len(mod) == 25
        info = mod.describe()
        assert info["objects"] == 25
        assert info["frozen"] is True
        assert info["tree"] == "rtree"
        assert info["index_nodes"] > 0
        assert info["index_mb"] > 0

    def test_save(self, mod, tmp_path):
        mod.save(tmp_path / "mod.pages")
        assert (tmp_path / "mod.pages").exists()
        assert (tmp_path / "mod.pages.meta.json").exists()


class TestQueries:
    def test_range_matches_brute_force(self, mod):
        t0, t1 = mod.dataset.time_span()
        window = MBR2D(0.3, 0.3, 0.7, 0.7)
        got = mod.range(window, t0, t0 + (t1 - t0) / 4)
        want = range_query_brute_force(
            mod.dataset, window, t0, t0 + (t1 - t0) / 4
        )
        assert got == want

    def test_nearest_matches_brute_force(self, mod):
        t0, t1 = mod.dataset.time_span()
        got = mod.nearest(Point(0.5, 0.5), t0, t1, k=3)
        want = nearest_neighbours_brute_force(
            mod.dataset, Point(0.5, 0.5), t0, t1, k=3
        )
        assert [g[0] for g in got] == [w[0] for w in want]

    def test_most_similar_matches_scan(self, mod):
        rng = random.Random(2)
        query, period = make_query(mod.dataset, 0.2, rng)
        got, stats = mod.most_similar(query, k=3, period=period)
        want = linear_scan_kmst(mod.dataset, query, period, k=3, exact=True)
        assert [m.trajectory_id for m in got] == [
            m.trajectory_id for m in want
        ]
        assert stats is not None and stats.node_accesses > 0

    def test_most_similar_without_index(self, mod):
        rng = random.Random(3)
        query, period = make_query(mod.dataset, 0.2, rng)
        got, stats = mod.most_similar(query, k=2, period=period, use_index=False)
        assert stats is None
        assert len(got) == 2

    def test_similar_to_excludes_self(self, mod):
        matches, _stats = mod.similar_to(5, k=3)
        ids = [m.trajectory_id for m in matches]
        assert 5 not in ids
        assert len(ids) == 3

    def test_similar_to_with_window(self, mod):
        source = mod.dataset[7]
        lo = source.t_start + source.duration * 0.25
        hi = source.t_start + source.duration * 0.5
        matches, _stats = mod.similar_to(7, lo, hi, k=2)
        assert len(matches) == 2


class TestMutableStore:
    @pytest.fixture()
    def store(self):
        db = MovingObjectDatabase(tree="rtree", page_size=512)
        db.add_all(generate_gstd(12, samples_per_object=25, seed=51))
        return db.freeze(mutable=True)

    def test_describe_reports_mutability(self, store, mod):
        assert store.describe()["mutable"] is True
        assert mod.describe()["mutable"] is False

    def test_insert_then_query_finds_newcomer(self, store):
        source = store.dataset[3]
        twin = source.translated(1e-4, 0.0).with_id(500)
        store.insert(twin)
        matches, _ = store.similar_to(3, k=1)
        assert matches[0].trajectory_id == 500

    def test_remove_then_query_skips_victim(self, store):
        source = store.dataset[3]
        query = source.sliced(
            source.t_start + source.duration * 0.2,
            source.t_start + source.duration * 0.5,
        ).with_id(-1)
        store.remove(3)
        assert 3 not in store.dataset
        matches, _ = store.most_similar(
            query, k=3, period=(query.t_start, query.t_end)
        )
        assert all(m.trajectory_id != 3 for m in matches)

    def test_immutable_store_rejects_mutation(self, mod):
        from repro import Trajectory

        with pytest.raises(QueryError):
            mod.insert(Trajectory(900, [(0, 0, 0), (1, 1, 1)]))
        with pytest.raises(QueryError):
            mod.remove(1)

    def test_failed_insert_rolls_back_dataset(self, store):
        from repro import Trajectory

        with pytest.raises(Exception):
            store.insert(Trajectory("bad-id", [(0, 0, 0), (1, 1, 1)]))
        assert "bad-id" not in store.dataset

    def test_histogram_invalidated_on_mutation(self, store):
        h1 = store.histogram()
        store.remove(0)
        assert store.histogram() is not h1

    def test_browse_prefix_matches_most_similar(self, store):
        import itertools

        source = store.dataset[5]
        query = source.sliced(
            source.t_start + source.duration * 0.1,
            source.t_start + source.duration * 0.4,
        ).with_id(-1)
        period = (query.t_start, query.t_end)
        browsed = list(itertools.islice(store.browse(query, period), 3))
        matches, _ = store.most_similar(query, k=3, period=period)
        assert [m.trajectory_id for m in browsed] == [
            m.trajectory_id for m in matches
        ]


class TestOptimiserSupport:
    def test_histogram_cached(self, mod):
        assert mod.histogram() is mod.histogram()

    def test_estimate_cost(self, mod):
        source = mod.dataset[3]
        est = mod.estimate_cost(
            source, source.t_start, source.t_start + source.duration * 0.1
        )
        assert est.alive_segments > 0

    def test_estimate_range_selectivity(self, mod):
        t0, t1 = mod.dataset.time_span()
        sel = mod.estimate_range_selectivity(MBR2D(0, 0, 1, 1), t0, t1)
        assert 0.9 <= sel <= 1.0
