"""The bundled examples must run cleanly and print their headline
conclusions (they are executable documentation)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "DISSIM(Q, T) = 0.000000" in out
        assert "top-5 most similar trajectories" in out
        assert "pruning power" in out

    def test_transit_planning(self):
        out = run_example("transit_planning.py")
        assert "5/5 of the top matches" in out

    def test_fleet_monitoring(self):
        out = run_example("fleet_monitoring.py")
        assert "range query" in out
        assert "nearest neighbour" in out
        assert "k-MST" in out
        assert "Same index, three query types" in out

    def test_time_relaxed_search(self):
        out = run_example("time_relaxed_search.py")
        assert "time-relaxed k-MST" in out
        assert "vehicle 1 wins with a recovered shift of 2400 s" in out

    def test_compression_quality(self):
        out = run_example("compression_quality.py")
        assert "Figure 8" in out
        assert "Figure 9" in out
        # DISSIM's table row must be all-zero failures in this scenario
        for line in out.splitlines():
            cells = line.split()
            if cells and cells[0] == "DISSIM":
                assert all(c == "0%" for c in cells[1:])
                break
        else:
            pytest.fail("DISSIM row not found")
