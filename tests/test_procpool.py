"""Process-per-shard execution: picklable plans, columnar answers.

Covers the four contracts of the process-pool path:

* **identity** — ``executor="process"`` answers are byte-identical to
  ``executor="serial"`` across both trees × all four partitioners ×
  k ∈ {1, 5, 10} (the answers travel as columnar
  :class:`~repro.engine.planner.ShardAnswer` buffers and merge through
  the same code path, so this is the acceptance property);
* **serialization** — :class:`~repro.engine.planner.ShardPlan` /
  :class:`ShardAnswer` round-trip through pickle *and* the versioned
  JSON codec (the pickle form is the codec), malformed payloads and
  stale generation signatures are rejected;
* **deadlines** — the absolute deadline is an explicit plan field
  enforced inside workers, and a served process-pool engine still
  returns 504;
* **observability** — workers start from fresh registries and ship
  per-call counter deltas; the parent's shard-labelled totals match the
  serial executor's for the same batch.
"""

import json
import multiprocessing
import pickle
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    RTree3D,
    TBTree,
    Trajectory,
    TrajectoryDataset,
    generate_gstd,
    make_workload,
)
from repro.engine import (
    EngineConfig,
    ProcessPoolShardExecutor,
    QueryRequest,
    ShardAnswer,
    ShardedQueryEngine,
    ShardPlan,
)
from repro.engine.executor import _execute_shard_plan
from repro.exceptions import DeadlineExceeded, QueryError
from repro.search.spec import QuerySpec
from repro.serve import BackgroundServer, ServeClient, ServeConfig
from repro.serve.client import ServeRejected
from repro.sharding import (
    ShardedDataset,
    build_sharded_index,
    make_partitioner,
    save_sharded_index,
)

from conftest import trajectories

ALL_KINDS = ("round_robin", "hash", "spatial", "temporal")


@pytest.fixture(scope="module")
def dataset():
    return generate_gstd(24, samples_per_object=20, seed=13)


@pytest.fixture(scope="module")
def workload(dataset):
    return list(make_workload(dataset, 2, 0.15, seed=5))


def _save_sharded(dataset, tree_cls, kind, directory, num_shards=4):
    sharded_ds = ShardedDataset.partition(
        dataset, make_partitioner(kind, num_shards)
    )
    sharded = build_sharded_index(sharded_ds, tree_cls, page_size=1024)
    save_sharded_index(sharded, directory)
    sharded.close()


# ----------------------------------------------------------------------
# byte-identity — the acceptance property
# ----------------------------------------------------------------------
class TestProcessExecutorIdentity:
    @pytest.mark.parametrize("tree_cls", [RTree3D, TBTree])
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_process_answers_identical_to_serial(
        self, tree_cls, kind, dataset, workload, tmp_path
    ):
        directory = tmp_path / "shards"
        _save_sharded(dataset, tree_cls, kind, directory)
        serial = ShardedQueryEngine.open(
            directory, config=EngineConfig(executor="serial"), backend="mmap"
        )
        proc = ShardedQueryEngine.open(
            directory,
            config=EngineConfig(executor="process", max_workers=2),
            backend="mmap",
        )
        try:
            for query, period in workload:
                for k in (1, 5, 10):
                    want = serial.execute(
                        QueryRequest("mst", query, period, k=k)
                    )
                    got = proc.execute(QueryRequest("mst", query, period, k=k))
                    assert got.answer_json() == want.answer_json()
        finally:
            proc.close()
            serial.close()

    def test_clean_shutdown_leaves_no_workers(self, dataset, workload, tmp_path):
        directory = tmp_path / "shards"
        _save_sharded(dataset, RTree3D, "hash", directory)
        proc = ShardedQueryEngine.open(
            directory,
            config=EngineConfig(executor="process", max_workers=2),
            backend="mmap",
        )
        query, period = workload[0]
        proc.execute(QueryRequest("mst", query, period, k=3))
        assert multiprocessing.active_children()  # pool is actually up
        proc.close()
        assert multiprocessing.active_children() == []

    def test_process_executor_requires_shard_paths(self, dataset):
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner("hash", 2)
        )
        sharded = build_sharded_index(sharded_ds, RTree3D, page_size=1024)
        try:
            with pytest.raises(QueryError, match="manifest"):
                ShardedQueryEngine(
                    sharded, config=EngineConfig(executor="process")
                )
        finally:
            sharded.close()

    def test_pool_close_is_idempotent_and_reopens(self, dataset, workload, tmp_path):
        directory = tmp_path / "shards"
        _save_sharded(dataset, RTree3D, "hash", directory)
        proc = ShardedQueryEngine.open(
            directory,
            config=EngineConfig(executor="process", max_workers=2),
            backend="mmap",
        )
        query, period = workload[0]
        try:
            first = proc.execute(QueryRequest("mst", query, period, k=3))
            proc.executor.close()
            proc.executor.close()  # second close is a no-op
            again = proc.execute(QueryRequest("mst", query, period, k=3))
            assert again.answer_json() == first.answer_json()
        finally:
            proc.close()


# ----------------------------------------------------------------------
# the serialization contract
# ----------------------------------------------------------------------
def _plan_for(query, **overrides) -> ShardPlan:
    spec = QuerySpec(
        "mst",
        query,
        (query.t_start, query.t_end),
        k=3,
        options={"exclude_ids": frozenset({7, 2})},
    )
    fields = dict(
        spec=spec,
        shard_id=1,
        shard_path="/data/shards/shard_0001.pages",
        signature=(12, 310, 4),
        vmax=3.5,
        deadline=1234.5,
        backend="mmap",
        kernels="python",
    )
    fields.update(overrides)
    return ShardPlan(**fields)


class TestSerializationContract:
    @given(query=trajectories(id_=-1), vmax=st.floats(0.0, 100.0))
    @settings(max_examples=25, deadline=None)
    def test_shard_plan_round_trips_pickle_and_json(self, query, vmax):
        plan = _plan_for(query, vmax=vmax)
        doc = plan.as_dict()
        # pickle is routed through the dict codec
        assert pickle.loads(pickle.dumps(plan)).as_dict() == doc
        # and the dict codec survives a real JSON hop
        assert ShardPlan.from_dict(json.loads(json.dumps(doc))).as_dict() == doc

    @given(
        values=st.lists(
            st.tuples(
                st.integers(0, 10_000),
                st.floats(0.0, 1e6, allow_nan=False),
                st.floats(0.0, 1e3, allow_nan=False),
            ),
            max_size=8,
        ),
        windows=st.lists(
            st.tuples(
                st.floats(0.0, 1e3, allow_nan=False),  # lo
                st.floats(0.01, 1e3, allow_nan=False),  # hi - lo
                st.floats(-1e3, 1e3, allow_nan=False),  # x1
                st.floats(-1e3, 1e3, allow_nan=False),  # y1
                st.floats(0.0, 1e3, allow_nan=False),  # t1
                st.floats(-1e3, 1e3, allow_nan=False),  # x2
                st.floats(-1e3, 1e3, allow_nan=False),  # y2
                st.floats(0.01, 1e3, allow_nan=False),  # t2 - t1
            ),
            max_size=3,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_shard_answer_round_trips_pickle_and_json(self, values, windows):
        answer = ShardAnswer(
            shard_id=2,
            signature=(5, 40, 1),
            exact_tids=[tid for tid, _v, _e in values],
            exact_values=[v for _t, v, _e in values],
            exact_error_bounds=[e for _t, _v, e in values],
            window_counts=[0] * len(values),
            window_data=[],
            partial_tids=[9000],
            partial_values=[1.25],
            stats={"node_accesses": 3},
            counters={"index.mindist_evaluations": 7},
        )
        if values:  # hang the sampled windows off the first candidate
            answer.window_counts[0] = len(windows)
            for lo, span, x1, y1, t1, x2, y2, dt in windows:
                answer.window_data.extend(
                    (lo, lo + span, x1, y1, t1, x2, y2, t1 + dt)
                )
        doc = answer.as_dict()
        assert pickle.loads(pickle.dumps(answer)).as_dict() == doc
        revived = ShardAnswer.from_dict(json.loads(json.dumps(doc)))
        assert revived.as_dict() == doc
        # decode → re-encode is lossless too
        rebuilt = ShardAnswer.from_records(
            answer.shard_id,
            answer.signature,
            revived.to_records(),
            revived.stats,
            revived.counters,
        )
        assert rebuilt.as_dict() == doc

    def test_unknown_plan_version_is_rejected(self, dataset):
        doc = _plan_for(next(iter(dataset))).as_dict()
        doc["shard_plan"] = 99
        with pytest.raises(QueryError, match="version"):
            ShardPlan.from_dict(doc)

    def test_auto_kernels_must_be_resolved_before_shipping(self, dataset):
        doc = _plan_for(next(iter(dataset))).as_dict()
        doc["kernels"] = "auto"
        with pytest.raises(QueryError, match="auto"):
            ShardPlan.from_dict(doc)

    @pytest.mark.parametrize(
        "mutation",
        [
            {"shard_answer": 2},
            {"signature": [1, 2]},
            {"exact_tids": [1, 2], "exact_values": [0.5]},
            {"window_counts": [2], "exact_tids": [1], "exact_values": [0.5],
             "exact_error_bounds": [0.0], "window_data": [0.0] * 8},
        ],
    )
    def test_malformed_answers_are_rejected(self, mutation):
        doc = ShardAnswer(shard_id=0, signature=(1, 2, 3)).as_dict()
        doc.update(mutation)
        with pytest.raises(QueryError):
            ShardAnswer.from_dict(doc)

    def test_stale_answer_signature_is_rejected_at_merge(
        self, dataset, workload, tmp_path
    ):
        directory = tmp_path / "shards"
        _save_sharded(dataset, RTree3D, "hash", directory)
        engine = ShardedQueryEngine.open(
            directory, config=EngineConfig(executor="serial"), backend="mmap"
        )
        try:
            stale = ShardAnswer(shard_id=0, signature=(0, 0, 0))
            with pytest.raises(QueryError, match="signature"):
                engine._validate_answer(stale)
            good = ShardAnswer(
                shard_id=0, signature=engine.shard_engines[0].signature()
            )
            engine._validate_answer(good)  # current generation passes
        finally:
            engine.close()

    def test_worker_rejects_plan_against_rebuilt_store(
        self, dataset, tmp_path
    ):
        directory = tmp_path / "shards"
        _save_sharded(dataset, RTree3D, "hash", directory)
        query = next(iter(dataset))
        plan = _plan_for(
            query,
            shard_path=str(directory / "shard_0000.pages"),
            signature=(1, 1, 1),  # no real generation looks like this
            deadline=None,
            kernels=None,
        )
        # _execute_shard_plan is the exact function pool workers import;
        # running it in-process exercises the same open-and-verify path.
        with pytest.raises(QueryError, match="signature"):
            _execute_shard_plan(plan)


# ----------------------------------------------------------------------
# deadline propagation
# ----------------------------------------------------------------------
class TestDeadlinePropagation:
    def test_expired_deadline_is_checked_before_the_store_opens(self, dataset):
        plan = _plan_for(
            next(iter(dataset)),
            shard_path="/nonexistent/shard.pages",
            deadline=time.monotonic() - 1.0,
        )
        # DeadlineExceeded, not a file error: the deadline gate comes
        # first, so an overloaded pool sheds work without touching I/O.
        with pytest.raises(DeadlineExceeded):
            _execute_shard_plan(plan)

    def test_served_process_engine_returns_504(
        self, dataset, workload, tmp_path
    ):
        directory = tmp_path / "shards"
        _save_sharded(dataset, RTree3D, "hash", directory)
        engine = ShardedQueryEngine.open(
            directory,
            config=EngineConfig(executor="process", max_workers=2),
            backend="mmap",
        )
        config = ServeConfig(port=0, workers=2, quota_rps=0.0)
        try:
            with BackgroundServer(engine, config) as bg:
                query, period = workload[0]
                spec = QuerySpec(
                    "mst", query, period, k=2, deadline_ms=0.001
                )
                with ServeClient(*bg.address) as client:
                    with pytest.raises(ServeRejected) as info:
                        client.query(spec)
                    assert info.value.status == 504
                    assert info.value.reason == "deadline_exceeded"
        finally:
            engine.close()


# ----------------------------------------------------------------------
# worker obs isolation
# ----------------------------------------------------------------------
def _staggered_dataset(epochs=3, gap=2500.0):
    """GSTD epochs laid back to back, so the temporal partitioner gives
    each epoch its own shard and per-epoch queries select exactly one
    shard — the regime where serial and process traversals see the same
    bounds and must report the same work counters."""
    dataset = TrajectoryDataset()
    workloads = []
    for epoch in range(epochs):
        raw = generate_gstd(8, samples_per_object=16, seed=40 + epoch)
        offset = epoch * gap
        shifted = TrajectoryDataset()
        for tr in raw:
            shifted.add(
                Trajectory(
                    epoch * 1000 + tr.object_id,
                    [(p.x, p.y, p.t + offset) for p in tr.samples],
                )
            )
        for tr in shifted:
            dataset.add(tr)
        workloads.extend(make_workload(shifted, 2, 0.25, seed=9 + epoch))
    return dataset, workloads


class TestWorkerObsIsolation:
    def test_fresh_registry_ships_per_call_deltas(self, dataset, tmp_path):
        directory = tmp_path / "shards"
        _save_sharded(dataset, RTree3D, "hash", directory)
        query = next(iter(dataset))
        engine = ShardedQueryEngine.open(directory, backend="mmap")
        signature = engine.shard_engines[0].signature()
        engine.close()
        plan = _plan_for(
            query,
            shard_id=0,
            shard_path=str(directory / "shard_0000.pages"),
            signature=signature,
            deadline=None,
            kernels=None,
        )
        _execute_shard_plan(plan)  # cold call warms the buffer pool
        first = _execute_shard_plan(plan)
        second = _execute_shard_plan(plan)
        assert first.counters  # the traversal counted something
        # identical query on a warm store, identical deltas — nothing
        # accumulated between calls (each call starts from a fresh
        # registry; only the page buffer is carried over)
        assert second.counters == first.counters
        assert second.stats == first.stats

    def test_parent_shard_totals_match_serial_executor(self, tmp_path):
        dataset, workloads = _staggered_dataset()
        directory = tmp_path / "shards"
        _save_sharded(dataset, RTree3D, "temporal", directory, num_shards=3)
        requests = [
            QueryRequest("mst", q, p, k=3) for q, p in workloads
        ]
        serial = ShardedQueryEngine.open(
            directory, config=EngineConfig(executor="serial"), backend="mmap"
        )
        proc = ShardedQueryEngine.open(
            directory,
            config=EngineConfig(executor="process", max_workers=2),
            backend="mmap",
        )
        try:
            want_batch = serial.run_batch(requests)
            got_batch = proc.run_batch(requests)
            for want, got in zip(want_batch.results, got_batch.results):
                assert got.answer_json() == want.answer_json()
                # single-shard plans ⇒ identical bounds ⇒ identical
                # per-shard work breakdown, not just identical answers
                assert got.stats.extra["shards_searched"] == 1
                assert (
                    got.stats.extra["per_shard"]
                    == want.stats.extra["per_shard"]
                )
            shard_keys = [
                name
                for name in serial.metrics.counters
                if name.startswith("engine.shard.")
            ]
            assert shard_keys
            for name in shard_keys:
                assert proc.metrics.value(name) == serial.metrics.value(name)
        finally:
            proc.close()
            serial.close()
