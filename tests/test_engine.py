"""The batched query engine: correctness under caching, LRU bounds,
invalidation, executors and telemetry.

The load-bearing property: a batch run through the engine — with the
MINDIST memo, the refinement cache, buffer pinning and scratch reuse
all active — returns answers *identical* to one-off
:func:`repro.search.bfmst.bfmst_search` calls on a pristine stack.
"""

from __future__ import annotations

import pytest

from repro.datagen import generate_gstd, make_workload
from repro.engine import (
    BatchResult,
    DissimRefinementCache,
    EngineConfig,
    LRUCache,
    MindistCache,
    QueryEngine,
    QueryRequest,
    ThreadedExecutor,
    make_executor,
    query_key,
)
from repro.exceptions import QueryError
from repro.geometry import MBR2D, Point
from repro.index import RTree3D, TBTree
from repro.search.bfmst import bfmst_search as raw_bfmst
from repro.search.linear_scan import linear_scan_kmst as raw_scan


@pytest.fixture(scope="module")
def dataset():
    return generate_gstd(40, samples_per_object=60, seed=17)


@pytest.fixture(scope="module")
def workload(dataset):
    return list(make_workload(dataset, 5, query_length=0.2, seed=9))


def _build(tree_cls, dataset):
    index = tree_cls(page_size=512)
    index.bulk_insert(dataset)
    index.finalize()
    return index


def _key(matches):
    return [(m.trajectory_id, m.dissim, m.error_bound, m.exact)
            for m in matches]


class TestBatchedIdentity:
    """Engine answers are byte-identical to one-off searches."""

    @pytest.mark.parametrize("tree_cls", [RTree3D, TBTree])
    @pytest.mark.parametrize("k", [1, 5, 10])
    def test_mst_batch_matches_one_off(self, tree_cls, k, dataset, workload):
        index = _build(tree_cls, dataset)
        with QueryEngine(index, dataset) as engine:
            requests = [
                QueryRequest("mst", q, p, k=k) for q, p in workload
            ] * 2  # repeats exercise every cache level
            batch = engine.run_batch(requests)
            for i, (q, p) in enumerate(workload):
                want, _stats = raw_bfmst(index, q, p, k)
                assert _key(batch.results[i].matches) == _key(want)
                repeat = batch.results[i + len(workload)]
                assert _key(repeat.matches) == _key(want)

    def test_threaded_batch_matches_serial(self, dataset, workload):
        index = _build(RTree3D, dataset)
        requests = [QueryRequest("mst", q, p, k=3) for q, p in workload] * 2
        serial = QueryEngine(index, dataset).run_batch(requests)
        threaded = QueryEngine(
            index, dataset,
            config=EngineConfig(executor="thread", max_workers=4),
        ).run_batch(requests)
        assert threaded.executor == "thread"
        for a, b in zip(serial.results, threaded.results):
            assert _key(a.matches) == _key(b.matches)

    def test_mixed_kind_batch(self, dataset, workload):
        index = _build(RTree3D, dataset)
        q, p = workload[0]
        with QueryEngine(index, dataset) as engine:
            batch = engine.run_batch([
                QueryRequest("mst", q, p, k=3),
                QueryRequest("linear_scan", q, p, k=3,
                             options={"exact": True}),
                QueryRequest("nn", Point(0.5, 0.5), p, k=2),
                QueryRequest("range", MBR2D(0.2, 0.2, 0.8, 0.8), p),
                QueryRequest("time_relaxed", q, k=2),
            ])
        algorithms = [r.algorithm for r in batch]
        assert algorithms == [
            "bfmst", "linear_scan", "nn", "range", "time_relaxed"
        ]
        truth = raw_scan(dataset, q, p, 3, True)
        assert batch.results[1].ids == [m.trajectory_id for m in truth]
        # every result carries the unified stats block
        for r in batch:
            assert r.stats.as_dict()["pruning_power"] >= 0.0

    def test_engine_as_context_for_unified_api(self, dataset, workload):
        from repro.search import bfmst_search

        index = _build(RTree3D, dataset)
        q, p = workload[0]
        with QueryEngine(index, dataset) as engine:
            via_ctx = bfmst_search(engine, None, q, period=p, k=4)
        want, _ = raw_bfmst(index, q, p, 4)
        assert _key(via_ctx.matches) == _key(want)


class TestCaches:
    def test_lru_eviction_bound(self):
        cache = LRUCache(capacity=4)
        for i in range(10):
            cache.put(i, i * 10)
        assert len(cache) == 4
        assert cache.evictions == 6
        assert cache.get(9) == 90
        assert cache.get(0) is None  # evicted
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_recency_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'
        cache.put("c", 3)  # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_refinement_cache_scoped_by_query(self):
        cache = DissimRefinementCache(capacity=16)
        view_a = cache.view(("traj", 1), (0.0, 1.0))
        view_b = cache.view(("traj", 2), (0.0, 1.0))
        view_a.put(7, 1.25)
        assert view_a.get(7) == 1.25
        assert view_b.get(7) is None  # different query scope

    def test_refinement_cache_capacity_is_bounded(self):
        cache = DissimRefinementCache(capacity=3)
        view = cache.view(("traj", 1), (0.0, 1.0))
        for tid in range(10):
            view.put(tid, float(tid))
        assert len(cache.lru) == 3

    def test_mindist_memo_hits_on_repeat(self, dataset, workload):
        index = _build(RTree3D, dataset)
        q, p = workload[0]
        with QueryEngine(index, dataset) as engine:
            engine.run_batch([QueryRequest("mst", q, p, k=2)] * 3)
            counters = engine.cache_counters()
        assert counters["engine.cache.mindist.hits"] > 0
        assert counters["engine.cache.mindist.misses"] > 0
        # repeats only re-evaluate nothing: hits >= 2x misses impossible
        # to guarantee in general, but hits must cover the two repeats.
        assert (
            counters["engine.cache.mindist.hits"]
            >= counters["engine.cache.mindist.misses"]
        )

    def test_segdissim_memo_hits_on_repeat(self, dataset, workload):
        index = _build(RTree3D, dataset)
        q, p = workload[0]
        with QueryEngine(index, dataset) as engine:
            first = engine.execute(QueryRequest("mst", q, p, k=3))
            counters = engine.cache_counters()
            assert counters["engine.cache.segdissim.hits"] == 0
            assert counters["engine.cache.segdissim.misses"] > 0
            repeat = engine.execute(QueryRequest("mst", q, p, k=3))
            counters = engine.cache_counters()
        # the repeat re-reads every window integral from the memo
        assert counters["engine.cache.segdissim.hits"] > 0
        assert [m.trajectory_id for m in repeat.matches] == [
            m.trajectory_id for m in first.matches
        ]
        assert [m.dissim for m in repeat.matches] == [
            m.dissim for m in first.matches
        ]

    def test_mindist_scope_lru_bound(self):
        cache = MindistCache(scope_capacity=2)
        calls = []

        def base(q, mbr, lo, hi):
            calls.append(mbr)
            return 1.0

        box = MBR2D(0, 0, 1, 1)

        class FakeMBR:
            xmin = ymin = tmin = 0.0
            xmax = ymax = tmax = 1.0

        for i in range(5):
            fn = cache.wrap(base, None, ("traj", i), 0.0, 1.0)
            fn(None, FakeMBR(), 0.0, 1.0)
        assert len(cache.scopes) == 2
        assert box is not None  # silence lint on unused helper


class TestInvalidation:
    def test_rebuild_invalidates_caches(self, dataset):
        index = RTree3D(page_size=512)
        trajectories = list(dataset)
        for tr in trajectories[:-1]:
            index.insert(tr)
        (q, p), = make_workload(dataset, 1, query_length=0.2, seed=9)
        engine = QueryEngine(index, dataset)
        engine.run_batch([QueryRequest("mst", q, p, k=2)])
        assert engine.metrics.counters.get(
            "engine.cache.invalidations", 0
        ) == 0
        index.insert(trajectories[-1])  # structural change
        result = engine.run_batch([QueryRequest("mst", q, p, k=2)])
        assert engine.metrics.counters["engine.cache.invalidations"] == 1
        # and the post-invalidation answer is still correct
        want, _ = raw_bfmst(index, q, p, 2)
        assert _key(result.results[0].matches) == _key(want)
        engine.close()

    def test_pinning_tracks_rebuild(self, dataset):
        index = _build(RTree3D, dataset)
        engine = QueryEngine(
            index, dataset, config=EngineConfig(pin_upper_levels=1)
        )
        assert index.buffer.pinned_pages == {index.root_page}
        engine.close()
        assert index.buffer.pinned_pages == frozenset()


class TestEngineSurface:
    def test_requires_dataset_for_scan_kinds(self, dataset, workload):
        index = _build(RTree3D, dataset)
        q, p = workload[0]
        engine = QueryEngine(index)  # no dataset
        with pytest.raises(QueryError, match="dataset"):
            engine.execute(QueryRequest("linear_scan", q, p, k=1))
        engine.close()

    def test_unknown_kind_rejected(self, dataset, workload):
        index = _build(RTree3D, dataset)
        q, p = workload[0]
        with QueryEngine(index, dataset) as engine:
            with pytest.raises(QueryError, match="unknown query kind"):
                engine.execute(QueryRequest("voronoi", q, p))

    def test_closed_engine_rejects_queries(self, dataset, workload):
        index = _build(RTree3D, dataset)
        q, p = workload[0]
        engine = QueryEngine(index, dataset)
        engine.close()
        with pytest.raises(QueryError, match="closed"):
            engine.run_batch([QueryRequest("mst", q, p)])

    def test_batch_result_shape(self, dataset, workload):
        index = _build(RTree3D, dataset)
        q, p = workload[0]
        with QueryEngine(index, dataset) as engine:
            batch = engine.run_batch([QueryRequest("mst", q, p, k=1)])
        assert isinstance(batch, BatchResult)
        assert len(batch) == 1
        doc = batch.as_dict()
        assert doc["num_queries"] == 1
        assert doc["queries_per_sec"] > 0
        assert "engine.cache.dissim.hits" in doc["cache"]
        assert "engine.cache.mindist.hits" in doc["cache"]

    def test_query_key_types(self, dataset):
        tr = next(iter(dataset))
        assert query_key(tr)[0] == "traj"
        assert query_key(Point(1.0, 2.0)) == ("point", 1.0, 2.0)
        assert query_key(MBR2D(0, 0, 1, 1)) == ("window", 0, 0, 1, 1)
        with pytest.raises(QueryError):
            query_key(object())

    def test_executor_factory(self):
        assert make_executor("serial").kind == "serial"
        ex = make_executor("thread", 2)
        assert isinstance(ex, ThreadedExecutor) and ex.max_workers == 2
        with pytest.raises(ValueError):
            make_executor("fork")
