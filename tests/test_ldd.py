"""Tests for the Linearly Depended Dissimilarity (Definition 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import ldd

nonneg = st.floats(min_value=0.0, max_value=100.0)
speeds = st.floats(min_value=-50.0, max_value=50.0)
durations = st.floats(min_value=0.0, max_value=50.0)


class TestLDD:
    def test_zero_duration(self):
        assert ldd(5.0, -1.0, 0.0) == 0.0

    def test_constant_distance(self):
        assert ldd(3.0, 0.0, 4.0) == pytest.approx(12.0)

    def test_diverging_trapezoid(self):
        # 2 -> 2 + 1*4 = 6 over 4 time units: area (2+6)/2*4 = 16.
        assert ldd(2.0, 1.0, 4.0) == pytest.approx(16.0)

    def test_approaching_without_contact(self):
        # 10 -> 10 - 1*4 = 6: area (10+6)/2*4 = 32.
        assert ldd(10.0, -1.0, 4.0) == pytest.approx(32.0)

    def test_contact_triangle(self):
        # 4 -> 0 at t=2 then clamp: triangle 4*2/2 = 8 regardless of dt.
        assert ldd(4.0, -2.0, 10.0) == pytest.approx(4.0)
        assert ldd(4.0, -2.0, 2.0) == pytest.approx(4.0)

    def test_exact_contact_at_end(self):
        # D + V*dt == 0 exactly: trapezoid branch, triangle value.
        assert ldd(4.0, -2.0, 2.0) == pytest.approx(4.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            ldd(-1.0, 0.0, 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ldd(1.0, 0.0, -1.0)

    @given(nonneg, speeds, durations)
    def test_nonnegative(self, d, v, dt):
        assert ldd(d, v, dt) >= 0.0

    @given(nonneg, speeds, durations)
    def test_matches_numeric_area(self, d, v, dt):
        """LDD is the integral of max(0, D + V*t)."""
        n = 2000
        step = dt / n if n else 0.0
        area = sum(
            max(0.0, d + v * ((i + 0.5) * step)) * step for i in range(n)
        )
        assert ldd(d, v, dt) == pytest.approx(area, rel=0.02, abs=0.02)

    @given(nonneg, st.floats(min_value=0.0, max_value=50.0), durations)
    def test_monotone_in_speed_when_diverging(self, d, v, dt):
        assert ldd(d, v, dt) >= ldd(d, 0.0, dt) - 1e-12

    @given(nonneg, st.floats(min_value=0.0, max_value=50.0), durations)
    def test_approaching_never_exceeds_constant(self, d, v, dt):
        assert ldd(d, -v, dt) <= ldd(d, 0.0, dt) + 1e-12
