"""Unit tests for the live ingestion path (``repro.ingest``).

Covers the WAL record framing, replay/recovery, memtable semantics,
store validation, compaction + reopen, generation pinning and the
LiveQueryEngine / CLI surfaces.  The crash-consistency fault matrix
lives in ``test_ingest_crash.py``; the randomized interleavings in
``test_ingest_property.py``.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro import IngestStore, StorageError, TrajectoryError
from repro.cli import main
from repro.datagen import generate_gstd, make_query
from repro.engine import EngineConfig, LiveQueryEngine, QueryRequest
from repro.exceptions import ChecksumError, QueryError
from repro.ingest import (
    WAL_RECORD_BYTES,
    Memtable,
    WalRecord,
    WriteAheadLog,
    recover_wal,
    replay_wal,
)
from repro.search.api import bfmst_search
from repro.storage import RECORD_HEADER_BYTES, frame_record, parse_record
from repro.storage.format import KIND_WAL
from repro.trajectory import Trajectory, write_json


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def events_of(dataset):
    """Flatten a dataset into time-ordered (oid, x, y, t) append events."""
    return sorted(
        ((tr.object_id, p.x, p.y, p.t) for tr in dataset for p in tr),
        key=lambda e: (e[3], e[0]),
    )


def feed(store, dataset):
    for oid, x, y, t in events_of(dataset):
        store.append(oid, x, y, t)


def oracle_answers(dataset, query, period, k, *, tree="tbtree"):
    """Ground truth: k-MST over a from-scratch index of ``dataset``."""
    from repro.index.persistence import _KINDS

    index = _KINDS[tree](page_size=4096)
    for tr in dataset:
        index.insert(tr)
    index.finalize()
    result = bfmst_search(index, None, query, period=period, k=k)
    return [(m.trajectory_id, m.dissim) for m in result.matches]


def live_answers(store, query, period, k, **kwargs):
    matches, _stats = store.kmst(query, period, k, **kwargs)
    return [(m.trajectory_id, m.dissim) for m in matches]


@pytest.fixture()
def ingest_dataset():
    return generate_gstd(12, samples_per_object=24, seed=41)


# ----------------------------------------------------------------------
# record framing
# ----------------------------------------------------------------------
class TestRecordFraming:
    def test_roundtrip(self):
        payload = b"hello framed world"
        framed = frame_record(payload)
        kind, got, end = parse_record(framed)
        assert kind == KIND_WAL
        assert got == payload
        assert end == len(framed) == RECORD_HEADER_BYTES + len(payload)

    def test_records_pack_back_to_back(self):
        blob = frame_record(b"a") + frame_record(b"bb") + frame_record(b"ccc")
        offset, payloads = 0, []
        while offset < len(blob):
            _kind, payload, offset = parse_record(blob, offset)
            payloads.append(payload)
        assert payloads == [b"a", b"bb", b"ccc"]

    def test_kill_a_byte_every_flip_detected(self):
        framed = bytearray(frame_record(b"\x01\x02\x03\x04payload"))
        for pos in range(len(framed)):
            broken = bytearray(framed)
            broken[pos] ^= 0x40
            with pytest.raises(StorageError):
                parse_record(bytes(broken))

    def test_truncation_at_every_length_detected(self):
        framed = frame_record(b"truncate me")
        for cut in range(len(framed)):
            with pytest.raises(StorageError):
                parse_record(framed[:cut])

    def test_unknown_kind_rejected(self):
        # a page-kind frame is not a valid *record*
        framed = bytearray(frame_record(b"x"))
        import struct as _struct
        import zlib as _zlib

        from repro.storage.format import FORMAT_VERSION, PAGE_MAGIC

        prefix = _struct.Struct("<HBBI").pack(PAGE_MAGIC, FORMAT_VERSION, 99, 1)
        crc = _zlib.crc32(b"x", _zlib.crc32(prefix))
        framed = prefix + _struct.Struct("<II").pack(crc, 0) + b"x"
        with pytest.raises(StorageError, match="kind"):
            parse_record(framed)

    def test_crc_mismatch_is_checksum_error(self):
        framed = bytearray(frame_record(b"payload!"))
        framed[-1] ^= 0xFF  # corrupt payload, CRC now wrong
        with pytest.raises(ChecksumError):
            parse_record(bytes(framed))


# ----------------------------------------------------------------------
# write-ahead log
# ----------------------------------------------------------------------
class TestWal:
    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(1, 0.25, 0.5, 1.0)
            wal.append(2, -3.5, 7.0, 2.0)
            wal.sync()
        records, clean, damage = replay_wal(path)
        assert damage is None
        assert clean == path.stat().st_size == 2 * WAL_RECORD_BYTES
        assert records == [
            WalRecord(1, 0.25, 0.5, 1.0),
            WalRecord(2, -3.5, 7.0, 2.0),
        ]

    def test_unsynced_counter(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            assert wal.unsynced_appends == 0
            wal.append(1, 0, 0, 1)
            wal.append(1, 0, 0, 2)
            assert wal.unsynced_appends == 2
            wal.sync()
            assert wal.unsynced_appends == 0

    def test_replay_reports_torn_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for i in range(4):
                wal.append(7, float(i), 0.0, float(i))
        blob = path.read_bytes()
        path.write_bytes(blob[: 2 * WAL_RECORD_BYTES + 5])
        records, clean, damage = replay_wal(path)
        assert len(records) == 2
        assert clean == 2 * WAL_RECORD_BYTES
        assert damage is not None

    def test_recover_truncates_damage_and_is_idempotent(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for i in range(5):
                wal.append(3, float(i), float(i), float(i + 1))
        blob = bytearray(path.read_bytes())
        blob[3 * WAL_RECORD_BYTES + 8] ^= 0x01  # flip a bit in record 3
        path.write_bytes(bytes(blob))

        survivors = recover_wal(path)
        assert [r.t for r in survivors] == [1.0, 2.0, 3.0]
        assert path.stat().st_size == 3 * WAL_RECORD_BYTES
        # second recovery is a no-op on the already-clean file
        assert recover_wal(path) == survivors

    def test_empty_wal(self, tmp_path):
        path = tmp_path / "wal.log"
        path.touch()
        assert replay_wal(path) == ([], 0, None)
        assert recover_wal(path) == []


# ----------------------------------------------------------------------
# memtable
# ----------------------------------------------------------------------
class TestMemtable:
    def test_adopt_then_append_builds_segments(self):
        mt = Memtable()
        mt.adopt(5, [(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)])
        mt.append(5, 2.0, 0.0, 2.0)
        assert 5 in mt
        assert mt.num_points == 3
        assert mt.num_entries == 2  # two segments
        assert mt.points_of(5) == [(0.0, 0.0, 0.0), (1.0, 0.0, 1.0), (2.0, 0.0, 2.0)]

    def test_single_point_object_has_no_segments_until_second(self):
        mt = Memtable()
        mt.adopt(9, [(0.0, 0.0, 0.0)])
        assert mt.num_entries == 0
        mt.append(9, 1.0, 1.0, 1.0)
        assert mt.num_entries == 1

    def test_double_adopt_rejected(self):
        mt = Memtable()
        mt.adopt(1, [(0.0, 0.0, 0.0)])
        with pytest.raises(TrajectoryError):
            mt.adopt(1, [(0.0, 0.0, 0.0)])

    def test_new_points_excludes_seeded_history(self):
        mt = Memtable()
        mt.adopt(1, [(0.0, 0.0, 0.0), (1.0, 0.0, 1.0), (2.0, 0.0, 2.0)])
        assert mt.num_points == 3
        assert mt.new_points == 1  # only the point that made it dirty
        mt.append(1, 3.0, 0.0, 3.0)
        assert mt.new_points == 2

    def test_snapshot_is_isolated_from_later_appends(self):
        mt = Memtable()
        mt.adopt(1, [(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)])
        frozen = mt.snapshot()
        assert frozen is not None and frozen.num_entries == 1
        mt.append(1, 2.0, 0.0, 2.0)
        mt.append(1, 3.0, 0.0, 3.0)
        assert frozen.num_entries == 1  # unchanged
        assert mt.num_entries == 3

    def test_empty_snapshot_is_none(self):
        assert Memtable().snapshot() is None

    def test_snapshot_is_searchable(self):
        mt = Memtable()
        mt.adopt(1, [(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)])
        mt.adopt(2, [(5.0, 5.0, 0.0), (6.0, 5.0, 1.0)])
        frozen = mt.snapshot()
        query = Trajectory(-1, [(0.0, 0.1, 0.0), (1.0, 0.1, 1.0)])
        result = bfmst_search(frozen, None, query, k=1)
        assert [m.trajectory_id for m in result.matches] == [1]


# ----------------------------------------------------------------------
# store: validation and lifecycle
# ----------------------------------------------------------------------
class TestStoreValidation:
    def test_create_then_open(self, tmp_path):
        with IngestStore.create(tmp_path / "s") as store:
            store.append(1, 0.0, 0.0, 1.0)
        with IngestStore.open(tmp_path / "s") as store:
            assert store.num_points == 1
            assert store.ids() == [1]

    def test_create_refuses_existing_store(self, tmp_path):
        IngestStore.create(tmp_path / "s").close()
        with pytest.raises(StorageError):
            IngestStore.create(tmp_path / "s")

    def test_open_refuses_non_store(self, tmp_path):
        with pytest.raises(StorageError):
            IngestStore.open(tmp_path / "nothing-here")

    def test_bad_tree_kind_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            IngestStore.create(tmp_path / "s", tree="btree")

    def test_non_integer_id_rejected_before_write(self, tmp_path):
        with IngestStore.create(tmp_path / "s") as store:
            with pytest.raises(TrajectoryError):
                store.append("bus-1", 0.0, 0.0, 1.0)
            assert store.num_points == 0
            assert store.info()["wal_bytes"] == 0

    def test_non_finite_point_rejected_before_write(self, tmp_path):
        with IngestStore.create(tmp_path / "s") as store:
            for bad in (math.nan, math.inf, -math.inf):
                with pytest.raises(TrajectoryError):
                    store.append(1, bad, 0.0, 1.0)
            assert store.info()["wal_bytes"] == 0

    def test_time_regression_rejected_before_write(self, tmp_path):
        with IngestStore.create(tmp_path / "s") as store:
            store.append(1, 0.0, 0.0, 5.0)
            with pytest.raises(TrajectoryError):
                store.append(1, 1.0, 1.0, 5.0)  # equal is also a regression
            with pytest.raises(TrajectoryError):
                store.append(1, 1.0, 1.0, 4.0)
            assert store.num_points == 1
            # the rejected points never reached the WAL
            assert store.info()["wal_bytes"] == WAL_RECORD_BYTES

    def test_closed_store_refuses_everything(self, tmp_path):
        store = IngestStore.create(tmp_path / "s")
        store.append(1, 0.0, 0.0, 1.0)
        store.close()
        with pytest.raises(StorageError):
            store.append(1, 1.0, 1.0, 2.0)
        with pytest.raises(StorageError):
            store.view()


# ----------------------------------------------------------------------
# store: querying, compaction, reopen
# ----------------------------------------------------------------------
class TestStoreQueries:
    def test_live_answers_match_rebuild_oracle(self, tmp_path, ingest_dataset):
        rng = random.Random(11)
        query, period = make_query(ingest_dataset, 0.3, rng)
        with IngestStore.create(tmp_path / "s") as store:
            feed(store, ingest_dataset)
            want = oracle_answers(store.current_dataset(), query, period, 5)
            assert live_answers(store, query, period, 5) == want

    def test_answers_stable_across_compact_and_reopen(
        self, tmp_path, ingest_dataset
    ):
        rng = random.Random(12)
        query, period = make_query(ingest_dataset, 0.3, rng)
        events = events_of(ingest_dataset)
        half = len(events) // 2

        with IngestStore.create(tmp_path / "s") as store:
            for oid, x, y, t in events[:half]:
                store.append(oid, x, y, t)
            store.compact()
            for oid, x, y, t in events[half:]:
                store.append(oid, x, y, t)
            want = oracle_answers(store.current_dataset(), query, period, 5)
            assert live_answers(store, query, period, 5) == want
            store.compact()
            assert live_answers(store, query, period, 5) == want

        with IngestStore.open(tmp_path / "s") as store:
            assert live_answers(store, query, period, 5) == want

    def test_reopen_replays_wal_into_memtable(self, tmp_path, ingest_dataset):
        with IngestStore.create(tmp_path / "s") as store:
            feed(store, ingest_dataset)
            points = store.num_points
        with IngestStore.open(tmp_path / "s") as store:
            assert store.generation_number == -1
            assert store.num_points == points
            assert store.metrics.value("ingest.wal_replayed_records") == points
            assert store.metrics.value("ingest.recoveries") == 1

    def test_compact_truncates_wal_and_bumps_generation(
        self, tmp_path, ingest_dataset
    ):
        with IngestStore.create(tmp_path / "s") as store:
            feed(store, ingest_dataset)
            assert store.generation_number == -1
            assert store.compact() == 0
            assert store.generation_number == 0
            assert store.memtable_points == 0
            assert store.info()["wal_bytes"] == 0
            assert store.compact() is None  # empty memtable: nothing to do
            store.append(1, 1e6, 1e6, 1e6)
            assert store.compact() == 1

    def test_dirty_object_adopts_full_history(self, tmp_path, ingest_dataset):
        with IngestStore.create(tmp_path / "s") as store:
            feed(store, ingest_dataset)
            store.compact()
            oid = store.ids()[0]
            n_before = len(store.trajectory(oid))
            store.append(oid, 0.5, 0.5, 1e9)
            # the whole history is in the memtable, not just the new point
            assert store.memtable_points == n_before + 1
            with store.view() as view:
                _gen_index, exclude = view.parts[0]
                assert exclude == frozenset({oid})

    def test_auto_compaction_threshold(self, tmp_path):
        with IngestStore.create(
            tmp_path / "s", auto_compact_points=10
        ) as store:
            for i in range(25):
                store.append(1, float(i), 0.0, float(i))
            # 25 appends / threshold 10 -> at least two compactions, and
            # adopted history must not re-trigger immediately
            assert store.metrics.value("ingest.compactions") == 2
            assert store.generation_number == 1

    def test_query_of_empty_store(self, tmp_path):
        query = Trajectory(-1, [(0.0, 0.0, 0.0), (1.0, 0.0, 1.0)])
        with IngestStore.create(tmp_path / "s") as store:
            assert live_answers(store, query, None, 3) == []


# ----------------------------------------------------------------------
# generation pinning
# ----------------------------------------------------------------------
class TestGenerationPinning:
    def test_pins_balance_unpins(self, tmp_path, ingest_dataset):
        with IngestStore.create(tmp_path / "s") as store:
            feed(store, ingest_dataset)
            store.compact()
            for _ in range(5):
                with store.view():
                    pass
            assert store.metrics.value("ingest.generation_pins") == 5
            assert store.metrics.value("ingest.generation_unpins") == 5

    def test_pinned_generation_survives_compaction(
        self, tmp_path, ingest_dataset
    ):
        rng = random.Random(13)
        query, period = make_query(ingest_dataset, 0.3, rng)
        with IngestStore.create(tmp_path / "s") as store:
            feed(store, ingest_dataset)
            store.compact()
            want = oracle_answers(store.current_dataset(), query, period, 3)

            view = store.view()
            pinned = view.generation_number
            # new data + compaction retires generation 0 ...
            store.append(999, 0.0, 0.0, 1.0)
            store.append(999, 1.0, 1.0, 2.0)
            store.compact()
            assert store.generation_number == pinned + 1
            # ... but the pinned view still answers from its snapshot
            got = [(m.trajectory_id, m.dissim) for m in view.kmst(query, period, 3)[0]]
            assert got == want
            view.close()
            # now the retired generation's files are gone
            assert not list(store.directory.glob(f"gen-{pinned:06d}*"))
            assert store.metrics.value("ingest.generations_retired") == 1

    def test_closed_view_refuses_queries(self, tmp_path, ingest_dataset):
        with IngestStore.create(tmp_path / "s") as store:
            feed(store, ingest_dataset)
            view = store.view()
            view.close()
            with pytest.raises(StorageError):
                view.kmst(Trajectory(-1, [(0, 0, 0), (1, 1, 1)]))


# ----------------------------------------------------------------------
# LiveQueryEngine
# ----------------------------------------------------------------------
class TestLiveQueryEngine:
    def test_engine_matches_store_kmst(self, tmp_path, ingest_dataset):
        rng = random.Random(14)
        query, period = make_query(ingest_dataset, 0.3, rng)
        with IngestStore.create(tmp_path / "s") as store:
            feed(store, ingest_dataset)
            want = live_answers(store, query, period, 4)
            with LiveQueryEngine(store) as engine:
                result = engine.execute(QueryRequest("mst", query, period, k=4))
                got = [(m.trajectory_id, m.dissim) for m in result.matches]
            assert got == want

    def test_engine_merges_multiple_stores(self, tmp_path, ingest_dataset):
        rng = random.Random(15)
        query, period = make_query(ingest_dataset, 0.3, rng)
        trajectories = list(ingest_dataset)
        a, b = trajectories[::2], trajectories[1::2]
        store_a = IngestStore.create(tmp_path / "a")
        store_b = IngestStore.create(tmp_path / "b")
        try:
            from repro.trajectory import TrajectoryDataset

            feed(store_a, TrajectoryDataset(a))
            feed(store_b, TrajectoryDataset(b))
            store_a.compact()
            want = oracle_answers(ingest_dataset, query, period, 5)
            with LiveQueryEngine([store_a, store_b]) as engine:
                result = engine.execute(QueryRequest("mst", query, period, k=5))
                got = [(m.trajectory_id, m.dissim) for m in result.matches]
            assert got == want
        finally:
            store_a.close()
            store_b.close()

    def test_engine_rejects_non_mst(self, tmp_path):
        with IngestStore.create(tmp_path / "s") as store:
            with LiveQueryEngine(store) as engine:
                with pytest.raises(QueryError):
                    engine.execute(
                        QueryRequest(
                            "range", Trajectory(-1, [(0, 0, 0), (1, 1, 1)]), None
                        )
                    )

    def test_run_batch(self, tmp_path, ingest_dataset):
        rng = random.Random(16)
        requests = [
            QueryRequest("mst", *make_query(ingest_dataset, 0.3, rng), k=2)
            for _ in range(3)
        ]
        with IngestStore.create(tmp_path / "s") as store:
            feed(store, ingest_dataset)
            with LiveQueryEngine(
                store, EngineConfig(executor="serial")
            ) as engine:
                batch = engine.run_batch(requests)
            assert len(batch.results) == 3
            assert batch.metrics["generations"] == [-1]
            counters = engine.counters()
            assert counters.get("ingest.generation_pins", 0) == counters.get(
                "ingest.generation_unpins", 0
            )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestIngestCli:
    def test_init_feed_query_compact_info(self, tmp_path, capsys, ingest_dataset):
        data = tmp_path / "data.json"
        write_json(ingest_dataset, data)
        root = str(tmp_path / "store")

        assert main(["ingest", "init", root]) == 0
        assert main(["ingest", "feed", root, str(data)]) == 0
        assert main(["ingest", "query", root, "--k", "3", "--seed", "5"]) == 0
        assert main(["ingest", "compact", root]) == 0
        assert main(["ingest", "info", root]) == 0

        out = capsys.readouterr().out
        assert "absorbed" in out
        assert "generation" in out
        # the info verb prints a JSON document last (its opening brace
        # is the only one that starts a line)
        doc = json.loads(out[out.rfind("\n{") + 1 :])
        assert doc["points"] == sum(len(tr) for tr in ingest_dataset)
        assert doc["generation"] == 0
