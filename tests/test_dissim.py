"""Tests for the DISSIM metric (Definition 1 + Lemma 1).

The load-bearing properties:

* exact DISSIM agrees with brute-force numeric integration,
* the trapezoid approximation brackets the exact value one-sidedly,
* DISSIM is *sampling-rate invariant*: resampling a trajectory (adding
  interpolated points) does not change the metric — this is precisely
  the property that separates DISSIM from LCSS/EDR in the paper's
  motivating Figure 1.
"""

import math

import pytest
from hypothesis import given, settings

from repro import Trajectory, dissim, dissim_exact, distance_at
from repro.distance import merged_timestamps, resolve_period, segment_dissim
from repro.exceptions import QueryError, TemporalCoverageError
from repro.geometry import STPoint, STSegment

from conftest import cotemporal_trajectory_pairs, straight_line


def numeric_dissim(q, t, t_lo, t_hi, n=4000):
    """Brute-force Riemann sum of the inter-object distance."""
    step = (t_hi - t_lo) / n
    total = 0.0
    for i in range(n):
        mid = t_lo + (i + 0.5) * step
        total += distance_at(q, t, mid) * step
    return total


class TestExactDissim:
    def test_identical_trajectories_zero(self):
        tr = Trajectory(1, [(0, 0, 0), (5, 5, 5), (2, 1, 9)])
        assert dissim_exact(tr, tr.with_id(2)) == pytest.approx(0.0, abs=1e-12)

    def test_constant_offset(self):
        a = straight_line(1, 0.0, 0.0, 1.0, 0.0, [0, 10])
        b = straight_line(2, 0.0, 3.0, 1.0, 0.0, [0, 10])
        assert dissim_exact(a, b) == pytest.approx(30.0)

    def test_symmetry(self):
        a = Trajectory(1, [(0, 0, 0), (5, 2, 4), (1, 1, 10)])
        b = Trajectory(2, [(1, 1, 0), (2, 2, 3), (0, 5, 10)])
        assert dissim_exact(a, b) == pytest.approx(dissim_exact(b, a))

    def test_known_linear_divergence(self):
        # b runs away along x at speed 1 from the same start.
        a = straight_line(1, 0.0, 0.0, 0.0, 0.0, [0, 10])
        b = straight_line(2, 0.0, 0.0, 1.0, 0.0, [0, 10])
        # integral of t over [0, 10] = 50.
        assert dissim_exact(a, b) == pytest.approx(50.0)

    @given(cotemporal_trajectory_pairs())
    @settings(max_examples=60, deadline=None)
    def test_matches_numeric_integration(self, pair):
        q, t = pair
        exact = dissim_exact(q, t)
        approx = numeric_dissim(q, t, q.t_start, q.t_end)
        scale = max(1.0, exact)
        assert exact == pytest.approx(approx, abs=0.01 * scale)

    @given(cotemporal_trajectory_pairs())
    @settings(max_examples=60, deadline=None)
    def test_sampling_rate_invariance(self, pair):
        """Adding interpolated samples (keeping the original vertices,
        so the traced path is unchanged) must not change the metric."""
        q, t = pair
        times = [p.t for p in q.samples]
        enriched = sorted(
            set(times)
            | {(a + b) / 2.0 for a, b in zip(times, times[1:])}
            | {(3 * a + b) / 4.0 for a, b in zip(times, times[1:])}
        )
        dense_q = q.resampled(enriched)
        base = dissim_exact(q, t)
        dense = dissim_exact(dense_q, t)
        assert dense == pytest.approx(base, rel=1e-6, abs=1e-7)

    def test_figure1_motivating_example(self):
        """Paper Figure 1: same route sampled 4 vs 32 times is
        (near-)identical under DISSIM."""
        route = straight_line(0, 0.0, 0.0, 1.0, 0.5, [i for i in range(32)])
        sparse = route.uniformly_resampled(4).with_id(1)
        assert dissim_exact(sparse, route) == pytest.approx(0.0, abs=1e-9)


class TestApproximateDissim:
    @given(cotemporal_trajectory_pairs())
    @settings(max_examples=100, deadline=None)
    def test_one_sided_bracket(self, pair):
        q, t = pair
        exact = dissim_exact(q, t)
        result = dissim(q, t)
        slack = 1e-7 * max(1.0, result.approx)
        assert exact <= result.upper + slack
        assert exact >= result.lower - slack

    def test_error_zero_for_lockstep_parallel(self):
        a = straight_line(1, 0.0, 0.0, 1.0, 0.0, [0, 5, 10])
        b = straight_line(2, 0.0, 2.0, 1.0, 0.0, [0, 5, 10])
        r = dissim(a, b)
        assert r.approx == pytest.approx(20.0)
        assert r.error_bound == pytest.approx(0.0, abs=1e-12)


class TestPeriods:
    def test_default_period_is_overlap(self):
        a = Trajectory(1, [(0, 0, 0), (0, 0, 10)])
        b = Trajectory(2, [(1, 0, 5), (1, 0, 15)])
        # overlap [5, 10], constant distance 1.
        assert dissim_exact(a, b) == pytest.approx(5.0)

    def test_disjoint_lifetimes_rejected(self):
        a = Trajectory(1, [(0, 0, 0), (0, 0, 1)])
        b = Trajectory(2, [(0, 0, 2), (0, 0, 3)])
        with pytest.raises(TemporalCoverageError):
            dissim_exact(a, b)

    def test_full_coverage_enforced(self):
        a = Trajectory(1, [(0, 0, 0), (0, 0, 10)])
        b = Trajectory(2, [(1, 0, 2), (1, 0, 8)])
        with pytest.raises(TemporalCoverageError):
            dissim_exact(a, b, (0, 10))

    def test_clip_policy_scales(self):
        a = Trajectory(1, [(0, 0, 0), (0, 0, 10)])
        b = Trajectory(2, [(1, 0, 0), (1, 0, 5)])
        # overlap [0,5] has dissim 5; scaled by 10/5 = 2.
        assert dissim_exact(a, b, (0, 10), coverage="clip") == pytest.approx(10.0)

    def test_unknown_policy_rejected(self):
        a = Trajectory(1, [(0, 0, 0), (0, 0, 10)])
        with pytest.raises(QueryError):
            resolve_period(a, a, (0, 10), coverage="weird")

    def test_inverted_period_rejected(self):
        a = Trajectory(1, [(0, 0, 0), (0, 0, 10)])
        with pytest.raises(QueryError):
            dissim_exact(a, a.with_id(2), (8, 3))

    def test_merged_timestamps(self):
        a = Trajectory(1, [(0, 0, 0), (0, 0, 4), (0, 0, 10)])
        b = Trajectory(2, [(0, 0, 0), (0, 0, 7), (0, 0, 10)])
        assert merged_timestamps(a, b, 1.0, 9.0) == [1.0, 4.0, 7.0, 9.0]


class TestSegmentDissim:
    def test_matches_full_dissim_on_one_segment(self):
        q = Trajectory(1, [(0, 0, 0), (2, 2, 4), (0, 4, 10)])
        t = Trajectory(2, [(1, 1, 0), (3, 0, 10)])
        seg = STSegment(STPoint(1, 1, 0), STPoint(3, 0, 10))
        total, d_lo, d_hi = segment_dissim(q, seg, 0.0, 10.0)
        ref = dissim(q, t, (0.0, 10.0))
        assert total.approx == pytest.approx(ref.approx)
        assert d_lo == pytest.approx(distance_at(q, t, 0.0))
        assert d_hi == pytest.approx(distance_at(q, t, 10.0))

    def test_window_outside_segment_rejected(self):
        q = Trajectory(1, [(0, 0, 0), (1, 1, 10)])
        seg = STSegment(STPoint(0, 0, 0), STPoint(1, 1, 5))
        with pytest.raises(QueryError):
            segment_dissim(q, seg, 4.0, 6.0)

    def test_query_not_covering_rejected(self):
        q = Trajectory(1, [(0, 0, 2), (1, 1, 4)])
        seg = STSegment(STPoint(0, 0, 0), STPoint(1, 1, 10))
        with pytest.raises(TemporalCoverageError):
            segment_dissim(q, seg, 0.0, 10.0)

    def test_exact_mode_has_zero_error(self):
        q = Trajectory(1, [(0, 0, 0), (5, 1, 10)])
        seg = STSegment(STPoint(2, 2, 0), STPoint(0, 1, 10))
        total, _lo, _hi = segment_dissim(q, seg, 0.0, 10.0, exact=True)
        assert total.error_bound == 0.0
        ref = dissim_exact(q, Trajectory(2, [(2, 2, 0), (0, 1, 10)]), (0, 10))
        assert total.approx == pytest.approx(ref)


def test_distance_at_matches_hand_computation():
    a = Trajectory(1, [(0, 0, 0), (10, 0, 10)])
    b = Trajectory(2, [(0, 3, 0), (10, 3, 10)])
    assert distance_at(a, b, 4.2) == pytest.approx(3.0)
    assert math.isclose(distance_at(a, b, 0.0), 3.0)
