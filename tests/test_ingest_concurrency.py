"""Generation pinning under concurrency.

Queries on :class:`~repro.engine.LiveQueryEngine`'s threaded executor
race a writer thread that appends and compacts as fast as it can.  A
query must keep the generation it pinned — its answers can never be
torn between two generations — and every pin must be matched by an
unpin (checked via the ``ingest.generation_*`` counters), with retired
generations' files actually leaving the disk.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import IngestStore
from repro.datagen import generate_gstd, make_query
from repro.engine import EngineConfig, LiveQueryEngine, QueryRequest
from repro.search.api import bfmst_search
from repro.trajectory import Trajectory

#: an object id and time range far outside the base dataset, so writer
#: traffic never changes the answers to period-constrained queries
NOISE_ID = 99_999
NOISE_T0 = 1e9


def _feed(store, dataset):
    for oid, x, y, t in sorted(
        ((tr.object_id, p.x, p.y, p.t) for tr in dataset for p in tr),
        key=lambda e: (e[3], e[0]),
    ):
        store.append(oid, x, y, t)


def _oracle(dataset, query, period, k):
    from repro.index import TBTree

    index = TBTree(page_size=4096)
    for tr in dataset:
        index.insert(tr)
    index.finalize()
    result = bfmst_search(index, None, query, period=period, k=k)
    return [(m.trajectory_id, m.dissim) for m in result.matches]


@pytest.fixture()
def base_store(tmp_path):
    dataset = generate_gstd(10, samples_per_object=16, seed=67)
    store = IngestStore.create(tmp_path / "s", sync_every=8)
    _feed(store, dataset)
    store.compact()
    rng = random.Random(3)
    query, period = make_query(dataset, 0.4, rng)
    want = _oracle(store.current_dataset(), query, period, 4)
    assert want  # the scenario must actually have answers
    yield store, query, period, want
    if not store._closed:
        store.close()


def test_threaded_queries_race_compactions(base_store):
    store, query, period, want = base_store
    stop = threading.Event()
    writer_error = []

    def writer():
        t = NOISE_T0
        try:
            while not stop.is_set():
                store.append(NOISE_ID, 0.0, 0.0, t)
                t += 1.0
                store.compact()
        except Exception as exc:  # surfaced after the join
            writer_error.append(exc)

    thread = threading.Thread(target=writer, name="ingest-writer")
    thread.start()
    try:
        requests = [QueryRequest("mst", query, period, k=4)] * 32
        with LiveQueryEngine(
            store, EngineConfig(executor="thread", max_workers=4)
        ) as engine:
            batch = engine.run_batch(requests)
    finally:
        stop.set()
        thread.join(timeout=30)
    assert not thread.is_alive()
    assert not writer_error, writer_error

    # every racing query saw a consistent pinned snapshot: the noise
    # object lives outside the period, so all answers are the baseline
    assert len(batch.results) == len(requests)
    for result in batch.results:
        got = [(m.trajectory_id, m.dissim) for m in result.matches]
        assert got == want

    # no pin leaks: every view released its generation
    pins = store.metrics.value("ingest.generation_pins")
    unpins = store.metrics.value("ingest.generation_unpins")
    assert pins == unpins
    assert pins >= len(requests)

    # retired generations are gone from disk — only the live one stays
    compactions = store.metrics.value("ingest.compactions")
    retired = store.metrics.value("ingest.generations_retired")
    assert compactions >= 2
    assert retired == compactions - 1
    live = store.generation_number
    pages = sorted(store.directory.glob("gen-*.pages"))
    assert [p.name for p in pages] == [f"gen-{live:06d}.pages"]


def test_pinned_view_survives_a_compaction_storm(base_store):
    """A long-lived view keeps answering from its pinned generation
    while dozens of compactions retire and delete newer state."""
    store, query, period, want = base_store
    view = store.view()
    pinned = view.generation_number
    t = NOISE_T0
    for _ in range(10):
        store.append(NOISE_ID, 0.0, 0.0, t)
        t += 1.0
        store.compact()
    assert store.generation_number == pinned + 10
    # the pinned generation's files are still on disk ...
    assert (store.directory / f"gen-{pinned:06d}.pages").exists()
    got = [(m.trajectory_id, m.dissim) for m in view.kmst(query, period, 4)[0]]
    assert got == want
    view.close()
    # ... and leave it the moment the pin drops
    assert not (store.directory / f"gen-{pinned:06d}.pages").exists()


def test_concurrent_viewers_share_one_generation(base_store):
    """Many threads opening and closing views concurrently never
    unbalance the refcount."""
    store, query, period, want = base_store
    errors = []

    def reader():
        try:
            for _ in range(20):
                matches, _ = store.kmst(query, period, 4)
                got = [(m.trajectory_id, m.dissim) for m in matches]
                assert got == want
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors
    pins = store.metrics.value("ingest.generation_pins")
    assert pins == 6 * 20
    assert pins == store.metrics.value("ingest.generation_unpins")
