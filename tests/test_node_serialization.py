"""Tests for node/entry page serialisation (round trips, capacity
derivation, corruption detection).

Since v2, node pages are framed (16-byte checksummed header from
``repro.storage.format``): semantic corruption of the *payload* is
tested through ``Node.from_payload``/re-framing, while any byte poked
into the framed image trips the frame checks first.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ChecksumError, IndexError_, PageOverflowError, StorageError
from repro.geometry import MBR3D, STPoint, STSegment
from repro.index import ENTRY_BYTES, InternalEntry, LeafEntry, Node, node_capacity
from repro.index.node import NODE_OVERHEAD_BYTES
from repro.storage import frame_page, unframe_page


def corrupt_payload(node: Node, mutate) -> bytes:
    """Re-frame a node image whose *payload* was tampered with — the
    CRC is then valid, so the node parser sees the corruption."""
    _kind, payload = unframe_page(node.to_bytes(4096))
    payload = bytearray(payload)
    mutate(payload)
    return frame_page(bytes(payload))


def leaf_entry(tid=1, x1=0.0, y1=0.0, t1=0.0, x2=1.0, y2=1.0, t2=1.0):
    return LeafEntry(tid, STSegment(STPoint(x1, y1, t1), STPoint(x2, y2, t2)))


class TestEntries:
    def test_leaf_entry_round_trip(self):
        e = leaf_entry(42, 0.5, -1.25, 3.0, 7.125, 2.5, 9.0)
        back = LeafEntry.from_bytes(e.to_bytes())
        assert back == e
        assert back.mbr == e.mbr

    def test_internal_entry_round_trip(self):
        e = InternalEntry(17, MBR3D(0, 1, 2, 3, 4, 5))
        back = InternalEntry.from_bytes(e.to_bytes())
        assert back == e

    def test_entry_sizes_match(self):
        assert len(leaf_entry().to_bytes()) == ENTRY_BYTES
        assert len(InternalEntry(1, MBR3D(0, 0, 0, 1, 1, 1)).to_bytes()) == ENTRY_BYTES

    def test_leaf_entry_mbr_precomputed(self):
        e = leaf_entry(1, 5.0, 2.0, 0.0, 1.0, 8.0, 4.0)
        assert e.mbr == MBR3D(1.0, 2.0, 0.0, 5.0, 8.0, 4.0)

    def test_leaf_entry_temporal_accessors(self):
        e = leaf_entry(1, t1=2.0, t2=7.0)
        assert e.t_start == 2.0 and e.t_end == 7.0

    @given(
        st.integers(min_value=-(2**62), max_value=2**62),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    )
    @settings(max_examples=50)
    def test_round_trip_preserves_exact_floats(self, tid, x):
        e = LeafEntry(tid, STSegment(STPoint(x, 0.0, 0.0), STPoint(x, 1.0, 1.0)))
        assert LeafEntry.from_bytes(e.to_bytes()) == e


class TestNodeCapacity:
    def test_paper_setup_capacity(self):
        # 4 KB pages, 16-byte frame + 32-byte node header, 56-byte
        # entries -> 72 (the frame costs no fanout at 4 KB).
        assert node_capacity(4096) == 72

    def test_too_small_page_rejected(self):
        with pytest.raises(IndexError_):
            node_capacity(64)


class TestNodeSerialisation:
    def test_leaf_round_trip(self):
        node = Node(3, level=0, entries=[leaf_entry(i) for i in range(5)],
                    owner_id=9, prev_leaf=1, next_leaf=7)
        data = node.to_bytes(4096)
        back = Node.from_bytes(3, data)
        assert back.is_leaf
        assert back.level == 0
        assert back.entries == node.entries
        assert back.owner_id == 9
        assert (back.prev_leaf, back.next_leaf) == (1, 7)

    def test_internal_round_trip(self):
        entries = [InternalEntry(i, MBR3D(0, 0, 0, i + 1, 1, 1)) for i in range(4)]
        node = Node(8, level=2, entries=entries)
        back = Node.from_bytes(8, node.to_bytes(4096))
        assert not back.is_leaf
        assert back.level == 2
        assert back.entries == entries

    def test_overflowing_node_rejected(self):
        cap = node_capacity(4096)
        node = Node(0, 0, entries=[leaf_entry(i) for i in range(cap + 1)])
        with pytest.raises(PageOverflowError):
            node.to_bytes(4096)

    def test_node_mbr_unions_entries(self):
        node = Node(0, 0, entries=[
            leaf_entry(1, 0, 0, 0, 1, 1, 1),
            leaf_entry(2, 5, -2, 2, 6, 0, 3),
        ])
        assert node.mbr() == MBR3D(0, -2, 0, 6, 1, 3)

    def test_empty_node_mbr_rejected(self):
        with pytest.raises(IndexError_):
            Node(0, 0).mbr()

    def test_corrupt_kind_rejected(self):
        node = Node(0, 0, entries=[leaf_entry()])

        def poke(payload):
            payload[0] = 99

        with pytest.raises(IndexError_):
            Node.from_bytes(0, corrupt_payload(node, poke))

    def test_inconsistent_level_rejected(self):
        node = Node(0, 0, entries=[leaf_entry()])

        def poke(payload):
            payload[1] = 3  # leaf kind with level 3

        with pytest.raises(IndexError_):
            Node.from_bytes(0, corrupt_payload(node, poke))

    def test_truncated_header_rejected(self):
        # Too short for a page frame, let alone a node header.
        with pytest.raises(StorageError):
            Node.from_bytes(0, b"\x01\x00")
        # And an unframed payload too short for a node header.
        with pytest.raises(IndexError_):
            Node.from_payload(0, b"\x01\x00")

    def test_count_beyond_payload_rejected(self):
        node = Node(0, 0, entries=[leaf_entry()])

        def poke(payload):
            payload[2] = 200  # count low byte

        with pytest.raises(IndexError_):
            Node.from_bytes(0, corrupt_payload(node, poke))

    def test_bit_flip_in_framed_page_detected(self):
        """Poking the framed image itself (not the payload) trips the
        frame verification before any node field is trusted."""
        node = Node(0, 0, entries=[leaf_entry(i) for i in range(5)])
        data = node.to_bytes(4096)
        for offset in (0, 5, 20, len(data) - 1):
            bad = bytearray(data)
            bad[offset] ^= 0xFF
            with pytest.raises(StorageError):  # ChecksumError is one
                Node.from_bytes(0, bytes(bad))

    def test_from_bytes_accepts_memoryview(self):
        """The mmap backend serves memoryview slices; parsing must not
        require a bytes copy."""
        node = Node(3, 0, entries=[leaf_entry(i) for i in range(4)])
        padded = node.to_bytes(4096).ljust(4096, b"\x00")
        back = Node.from_bytes(3, memoryview(padded))
        assert back.entries == node.entries


class TestChainedLeafSerialisation:
    """The TB-tree's shared-endpoint leaf layout."""

    @staticmethod
    def contiguous_entries(n, tid=5):
        from repro.geometry import STPoint, STSegment

        pts = [STPoint(float(i), float(i % 3), float(i)) for i in range(n + 1)]
        return [LeafEntry(tid, STSegment(a, b)) for a, b in zip(pts, pts[1:])]

    def test_round_trip_contiguous(self):
        entries = self.contiguous_entries(10)
        node = Node(4, 0, entries=entries, owner_id=5, chained=True)
        back = Node.from_bytes(4, node.to_bytes(4096))
        assert back.chained
        assert back.entries == entries
        assert back.owner_id == 5

    def test_round_trip_with_chain_break(self):
        from repro.geometry import STPoint, STSegment

        entries = self.contiguous_entries(4)
        # a temporal gap breaks the chain
        entries.append(
            LeafEntry(5, STSegment(STPoint(9, 9, 10), STPoint(10, 10, 11)))
        )
        entries.extend(
            LeafEntry(5, STSegment(STPoint(10, 10, 11 + i), STPoint(11, 11, 12 + i)))
            for i in range(0, 1)
        )
        node = Node(4, 0, entries=entries, owner_id=5, chained=True)
        back = Node.from_bytes(4, node.to_bytes(4096))
        assert back.entries == entries

    def test_payload_size_matches_serialisation(self):
        from repro.index.node import tb_leaf_payload_size

        entries = self.contiguous_entries(20)
        node = Node(0, 0, entries=entries, owner_id=5, chained=True)
        data = node.to_bytes(4096)
        # serialisation pads nothing itself; length = frame + node
        # header + payload
        assert len(data) == NODE_OVERHEAD_BYTES + tb_leaf_payload_size(entries)

    def test_chained_capacity_exceeds_flat_capacity(self):
        """The whole point: a 4 KB chained leaf holds ~167 contiguous
        segments vs 72 flat entries."""
        from repro.index import node_capacity

        entries = self.contiguous_entries(167)
        node = Node(0, 0, entries=entries, owner_id=5, chained=True)
        node.to_bytes(4096)  # fits
        assert len(entries) > 2 * node_capacity(4096)

    def test_chained_overflow_rejected(self):
        from repro.exceptions import PageOverflowError

        entries = self.contiguous_entries(168)
        node = Node(0, 0, entries=entries, owner_id=5, chained=True)
        with pytest.raises(PageOverflowError):
            node.to_bytes(4096)

    def test_corrupt_chain_rejected(self):
        entries = self.contiguous_entries(3)
        node = Node(0, 0, entries=entries, owner_id=5, chained=True)

        def poke(payload):
            payload[32] = 0  # chain length 0 is invalid
            payload[33] = 0

        with pytest.raises(IndexError_):
            Node.from_bytes(0, corrupt_payload(node, poke))

    def test_flipped_chain_byte_fails_checksum(self):
        """Tampering with the framed image (the old pre-frame attack)
        now dies at the frame, not in the chain decoder."""
        entries = self.contiguous_entries(3)
        node = Node(0, 0, entries=entries, owner_id=5, chained=True)
        data = bytearray(node.to_bytes(4096))
        data[48] ^= 0xFF  # first chain-layout byte of the payload
        with pytest.raises(ChecksumError):
            Node.from_bytes(0, bytes(data))
