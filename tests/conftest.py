"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import math
import random
import zlib

import pytest
from hypothesis import strategies as st

from repro import RTree3D, TBTree, Trajectory, TrajectoryDataset, generate_gstd

# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
finite_coord = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)

small_coord = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@st.composite
def trajectories(draw, min_samples=2, max_samples=12, id_=0):
    """Random well-formed trajectories on a [0, n] time axis."""
    n = draw(st.integers(min_value=min_samples, max_value=max_samples))
    # Strictly increasing timestamps with bounded, non-degenerate gaps.
    gaps = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=5.0),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    t = 0.0
    times = [0.0]
    for g in gaps:
        t += g
        times.append(t)
    xs = draw(st.lists(small_coord, min_size=n, max_size=n))
    ys = draw(st.lists(small_coord, min_size=n, max_size=n))
    return Trajectory(id_, list(zip(xs, ys, times)))


@st.composite
def cotemporal_trajectory_pairs(draw, max_samples=10):
    """Two trajectories spanning the same [0, T] window (possibly with
    different sampling instants) — the DISSIM setting."""
    total = draw(st.floats(min_value=1.0, max_value=20.0))

    def one(idx: int) -> Trajectory:
        n = draw(st.integers(min_value=2, max_value=max_samples))
        interior = draw(
            st.lists(
                st.floats(min_value=0.01, max_value=0.99),
                min_size=n - 2,
                max_size=n - 2,
                unique=True,
            )
        )
        times = sorted([0.0, *[f * total for f in interior], total])
        # unique fractions can still collide after scaling; nudge.
        for i in range(1, len(times)):
            if times[i] <= times[i - 1]:
                times[i] = math.nextafter(times[i - 1], math.inf)
        xs = draw(st.lists(small_coord, min_size=len(times), max_size=len(times)))
        ys = draw(st.lists(small_coord, min_size=len(times), max_size=len(times)))
        return Trajectory(idx, list(zip(xs, ys, times)))

    return one(0), one(1)


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def _pin_global_rng(request):
    """Determinism guard: every test starts from a fixed global-RNG
    state derived from its own nodeid, so an accidental unseeded
    ``random.*`` (or ``numpy.random``) call can never make a run
    order-dependent or flaky.  The audited suite only uses explicitly
    seeded ``random.Random`` instances; this pins anything that slips
    through review.  Prior state is restored afterwards.
    """
    seed = zlib.crc32(request.node.nodeid.encode())
    state = random.getstate()
    random.seed(seed)
    np_state = None
    try:
        import numpy as np

        np_state = np.random.get_state()
        np.random.seed(seed & 0xFFFFFFFF)
    except ImportError:
        np = None
    yield
    random.setstate(state)
    if np_state is not None:
        np.random.set_state(np_state)


@pytest.fixture(scope="session")
def tiny_dataset() -> TrajectoryDataset:
    """20 objects, 40 samples each, common [0, 2000] window."""
    return generate_gstd(20, samples_per_object=40, seed=11)


@pytest.fixture(scope="session")
def small_dataset() -> TrajectoryDataset:
    """60 objects, 60 samples each — big enough for index structure."""
    return generate_gstd(60, samples_per_object=60, seed=5)


@pytest.fixture(scope="session")
def small_rtree(small_dataset) -> RTree3D:
    index = RTree3D()
    index.bulk_insert(small_dataset)
    index.finalize()
    return index


@pytest.fixture(scope="session")
def small_tbtree(small_dataset) -> TBTree:
    index = TBTree()
    index.bulk_insert(small_dataset)
    index.finalize()
    return index


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(1234)


def straight_line(object_id, x0, y0, vx, vy, times) -> Trajectory:
    """Uniform linear motion sampled at ``times`` (test helper)."""
    return Trajectory(
        object_id,
        [(x0 + vx * t, y0 + vy * t, t) for t in times],
    )
