"""Tests for the observability layer (repro.obs): instrument
semantics, registry JSON round-tripping, no-op inertness, the
query-trace lifecycle, and the SearchStats enrichment a live trace
feeds through the whole stack."""

import json

import pytest

from repro import (
    NOOP_REGISTRY,
    MetricsRegistry,
    NoopRegistry,
    QueryTrace,
    RTree3D,
    generate_gstd,
    make_workload,
    query_trace,
)
from repro.obs import DEFAULT_HISTOGRAM_BOUNDS, Histogram, state
from repro.search.bfmst import bfmst_search
from repro.obs.trace import _resolve_io


class TestInstruments:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        assert reg.counter("x").inc() == 1
        assert reg.counter("x").inc(4) == 5
        assert reg.value("x") == 5
        assert reg.value("never-touched") == 0

    def test_counter_identity_on_reuse(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.timer("t") is reg.timer("t")
        assert reg.histogram("h") is reg.histogram("h")

    def test_gauge_set_and_high_water(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3.0)
        reg.record_max("g", 1.0)  # below: ignored
        assert reg.gauge("g").value == 3.0
        reg.record_max("g", 7.0)
        assert reg.gauge("g").value == 7.0

    def test_timer_accumulates(self):
        reg = MetricsRegistry()
        t = reg.timer("t")
        t.record(0.5)
        t.record(1.5)
        assert t.count == 2
        assert t.total_seconds == pytest.approx(2.0)
        assert t.max_seconds == pytest.approx(1.5)
        assert t.mean_seconds == pytest.approx(1.0)
        with reg.time("t"):
            pass
        assert t.count == 3

    def test_histogram_buckets_and_overflow(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.record(v)
        # bisect_right: a value equal to an edge lands in the next
        # bucket, so edges are exclusive upper bounds; 100 overflows.
        assert h.counts == [1, 2, 1]
        assert h.count == 4
        assert h.total == pytest.approx(106.5)
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx(106.5 / 4)

    def test_histogram_default_bounds_and_validation(self):
        assert Histogram("h").bounds == DEFAULT_HISTOGRAM_BOUNDS
        with pytest.raises(ValueError):
            Histogram("h", bounds=(5.0, 1.0))


class TestRegistry:
    def test_counters_view_and_snapshot_are_independent(self):
        reg = MetricsRegistry()
        reg.inc("a", 2)
        before = reg.snapshot()
        reg.inc("a", 3)
        assert before == {"a": 2}
        assert reg.counters == {"a": 5}

    def test_json_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("c", 7)
        reg.gauge("g").set(2.5)
        reg.timer("t").record(0.25)
        reg.observe("h", 3.0)
        back = MetricsRegistry.from_json(reg.to_json())
        assert back.as_dict() == reg.as_dict()
        # the revived registry is live, not a frozen snapshot
        back.inc("c")
        assert back.value("c") == 8

    def test_empty_histogram_round_trips(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        assert reg.as_dict()["histograms"]["h"]["min"] is None
        back = MetricsRegistry.from_json(reg.to_json())
        back.observe("h", 4.0)
        assert back.histogram("h").min == 4.0

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.reset()
        assert reg.counters == {}


class TestNoopRegistry:
    def test_everything_is_inert(self):
        reg = NoopRegistry()
        reg.inc("a", 10)
        reg.observe("h", 5.0)
        reg.record_max("g", 5.0)
        with reg.time("t"):
            pass
        assert not reg.enabled
        assert reg.counters == {}
        assert reg.counter("a").inc(100) == 0
        assert reg.gauge("g").value == 0.0
        assert reg.timer("t").count == 0
        assert reg.histogram("h").count == 0
        assert reg.as_dict() == {
            "counters": {}, "gauges": {}, "timers": {}, "histograms": {},
        }

    def test_singleton_is_a_noop(self):
        assert isinstance(NOOP_REGISTRY, NoopRegistry)
        NOOP_REGISTRY.inc("never")
        assert NOOP_REGISTRY.counters == {}


def _tiny_index(seed=5, num_objects=12, samples=15):
    dataset = generate_gstd(num_objects, samples_per_object=samples, seed=seed)
    index = RTree3D(page_size=512)
    index.bulk_insert(dataset)
    index.finalize()
    (query, period), = make_workload(dataset, 1, 0.2, seed=seed)
    return dataset, index, query, period


class TestQueryTrace:
    def test_resolve_io_walks_to_the_stats_block(self):
        _dataset, index, _query, _period = _tiny_index()
        stats = index.pagefile.stats
        assert _resolve_io(index) is stats
        assert _resolve_io(index.pagefile) is stats
        assert _resolve_io(stats) is stats
        assert _resolve_io(None) is None
        with pytest.raises(TypeError):
            _resolve_io(object())

    def test_active_slot_installed_and_restored(self):
        assert state.ACTIVE is None
        with query_trace(name="outer") as outer:
            assert state.ACTIVE is outer
            with query_trace(name="inner") as inner:
                assert state.ACTIVE is inner
            assert state.ACTIVE is outer
        assert state.ACTIVE is None

    def test_active_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with query_trace():
                raise RuntimeError("boom")
        assert state.ACTIVE is None

    def test_io_diff_scopes_to_the_traced_window(self):
        _dataset, index, query, period = _tiny_index()
        bfmst_search(index, query, period, k=2)  # pre-trace traffic
        with query_trace(index) as trace:
            _matches, stats = bfmst_search(index, query, period, k=2)
        assert trace.io is not None
        assert trace.io.logical_reads == stats.node_accesses
        assert trace.io.buffer_hits == stats.buffer_hits
        assert trace.io.buffer_misses == stats.buffer_misses
        assert trace.buffer_hit_ratio == pytest.approx(stats.buffer_hit_ratio)
        assert trace.wall_time_s > 0.0

    def test_trace_without_io_source(self):
        trace = QueryTrace(name="bare").start().finish()
        assert trace.io is None
        assert trace.buffer_hit_ratio == 0.0
        assert trace.as_dict()["io"] is None

    def test_as_dict_round_trips_through_json(self):
        _dataset, index, query, period = _tiny_index()
        with query_trace(index, name="q") as trace:
            bfmst_search(index, query, period, k=2)
        doc = json.loads(trace.to_json())
        assert doc["name"] == "q"
        assert doc["io"]["logical_reads"] > 0
        assert doc["metrics"]["counters"]["search.bfmst.queries"] == 1
        revived = MetricsRegistry.from_dict(doc["metrics"])
        assert revived.counters == trace.counters


class TestTracedSearch:
    def test_counters_cover_every_layer(self):
        _dataset, index, query, period = _tiny_index()
        with query_trace(index) as trace:
            _matches, stats = bfmst_search(index, query, period, k=3)
        c = trace.counters
        # storage -> index -> search -> distance, all wired through
        assert c["storage.logical_reads"] == stats.node_accesses
        assert c["index.nodes_dequeued"] == stats.node_accesses
        assert c["index.mindist_evaluations"] > 0
        assert c["search.bfmst.queries"] == 1
        assert c["search.bfmst.h1_rejections"] == stats.candidates_rejected
        assert c["search.bfmst.refinements"] == stats.refinement_candidates
        assert c["distance.trapezoid_integrals"] > 0

    def test_search_stats_enrichment(self):
        _dataset, index, query, period = _tiny_index()
        with query_trace(index):
            _matches, stats = bfmst_search(index, query, period, k=3)
        assert stats.mindist_evaluations > 0
        assert stats.heap_high_water > 0
        assert stats.trapezoid_evals >= stats.dissim_evaluations
        if stats.terminated_early:
            assert 0 < stats.h2_termination_depth <= stats.node_accesses
        doc = stats.as_dict()
        assert doc["pruning_power"] == pytest.approx(stats.pruning_power)
        assert doc["buffer_hit_ratio"] == pytest.approx(stats.buffer_hit_ratio)
        assert json.loads(stats.to_json()) == json.loads(
            json.dumps(doc)
        )

    def test_untraced_search_leaves_enrichment_at_zero(self):
        _dataset, index, query, period = _tiny_index()
        _matches, stats = bfmst_search(index, query, period, k=3)
        assert state.ACTIVE is None
        assert stats.mindist_evaluations == 0
        assert stats.heap_high_water == 0
        assert stats.exact_integral_evals == 0

    def test_noop_registry_records_nothing(self):
        _dataset, index, query, period = _tiny_index()
        with query_trace(index, registry=NOOP_REGISTRY) as trace:
            _matches, stats = bfmst_search(index, query, period, k=3)
        assert not trace.enabled
        assert trace.counters == {}
        assert stats.mindist_evaluations == 0
        # the IOStats composition still works: it predates the registry
        assert trace.io is not None and trace.io.logical_reads > 0

    def test_tracing_does_not_change_answers(self):
        _dataset, index, query, period = _tiny_index()
        plain, _ = bfmst_search(index, query, period, k=5)
        with query_trace(index):
            traced, _ = bfmst_search(index, query, period, k=5)
        assert [(m.trajectory_id, m.dissim) for m in plain] == [
            (m.trajectory_id, m.dissim) for m in traced
        ]
