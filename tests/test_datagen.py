"""Tests for the GSTD-style generator, the synthetic Trucks fleet and
the Table 3 query workloads."""

import math
import random

import pytest

from repro import GSTDConfig, TrucksConfig, generate_gstd, generate_trucks
from repro.datagen import GSTDGenerator, TrucksGenerator, make_query, make_workload
from repro.exceptions import QueryError, TrajectoryError


class TestGSTD:
    def test_deterministic_with_seed(self):
        a = generate_gstd(5, samples_per_object=20, seed=3)
        b = generate_gstd(5, samples_per_object=20, seed=3)
        for ta, tb in zip(a, b):
            assert ta == tb

    def test_different_seeds_differ(self):
        a = generate_gstd(5, samples_per_object=20, seed=3)
        b = generate_gstd(5, samples_per_object=20, seed=4)
        assert any(ta != tb for ta, tb in zip(a, b))

    def test_counts_and_common_window(self):
        ds = generate_gstd(7, samples_per_object=30, seed=1)
        assert len(ds) == 7
        assert ds.total_samples() == 7 * 30
        for tr in ds:
            assert tr.t_start == 0.0
            assert tr.t_end == GSTDConfig().duration

    def test_positions_stay_in_unit_square(self):
        ds = generate_gstd(10, samples_per_object=100, seed=5)
        for tr in ds:
            for p in tr:
                assert -1e-9 <= p.x <= 1.0 + 1e-9
                assert -1e-9 <= p.y <= 1.0 + 1e-9

    def test_jitter_produces_irregular_clocks(self):
        ds = generate_gstd(3, samples_per_object=50, seed=2, sampling_jitter=0.4)
        tr = ds[0]
        gaps = {round(b.t - a.t, 9) for a, b in zip(tr.samples, tr.samples[1:])}
        assert len(gaps) > 1  # not a regular clock

    def test_zero_jitter_regular_clock(self):
        ds = generate_gstd(2, samples_per_object=11, seed=2, sampling_jitter=0.0)
        tr = ds[0]
        gaps = {round(b.t - a.t, 6) for a, b in zip(tr.samples, tr.samples[1:])}
        assert len(gaps) == 1

    def test_normal_speed_distribution_supported(self):
        ds = generate_gstd(
            3, samples_per_object=20, seed=2, speed_distribution="normal"
        )
        assert len(ds) == 3

    def test_random_heading_mode(self):
        ds = generate_gstd(3, samples_per_object=20, seed=2, heading="random")
        assert len(ds) == 3

    def test_gaussian_initial_distribution(self):
        cfg = GSTDConfig(num_objects=4, initial_distribution="gaussian", seed=9)
        ds = GSTDGenerator(cfg).generate()
        assert len(ds) == 4

    def test_invalid_configs_rejected(self):
        with pytest.raises(TrajectoryError):
            GSTDConfig(num_objects=0)
        with pytest.raises(TrajectoryError):
            GSTDConfig(samples_per_object=1)
        with pytest.raises(TrajectoryError):
            GSTDConfig(duration=0.0)
        with pytest.raises(TrajectoryError):
            GSTDConfig(sampling_jitter=1.0)
        with pytest.raises(TrajectoryError):
            GSTDConfig(speed_scale=0.0)


class TestTrucks:
    def test_deterministic(self):
        a = generate_trucks(5, samples_per_truck=30, seed=1)
        b = generate_trucks(5, samples_per_truck=30, seed=1)
        for ta, tb in zip(a, b):
            assert ta == tb

    def test_counts_and_window(self):
        ds = generate_trucks(6, samples_per_truck=40, seed=1)
        assert len(ds) == 6
        cfg = TrucksConfig()
        for tr in ds:
            assert tr.t_start == 0.0
            assert tr.t_end == pytest.approx(cfg.duration)
            assert len(tr) == 40

    def test_positions_inside_region(self):
        cfg = TrucksConfig(num_trucks=5, samples_per_truck=50, seed=3)
        ds = TrucksGenerator(cfg).generate()
        for tr in ds:
            for p in tr:
                assert -1e-6 <= p.x <= cfg.region_size + 1e-6
                assert -1e-6 <= p.y <= cfg.region_size + 1e-6

    def test_trucks_share_routes(self):
        """Several trucks visit the same destination pool, so some
        pairs are much more similar than others (the quality
        experiment relies on this structure)."""
        ds = generate_trucks(12, samples_per_truck=60, seed=2, num_routes=3)
        from repro import dissim_exact

        values = []
        trs = list(ds)
        for i in range(len(trs)):
            for j in range(i + 1, len(trs)):
                values.append(dissim_exact(trs[i], trs[j]))
        assert max(values) > 3.0 * min(values)

    def test_invalid_configs_rejected(self):
        with pytest.raises(TrajectoryError):
            TrucksConfig(num_trucks=0)
        with pytest.raises(TrajectoryError):
            TrucksConfig(samples_per_truck=1)
        with pytest.raises(TrajectoryError):
            TrucksConfig(num_routes=0)
        with pytest.raises(TrajectoryError):
            TrucksConfig(dwell_fraction=0.95)

    def test_full_scale_parameters_documented(self):
        """The paper-scale invocation stays one call away (not run at
        full size here; just a small sanity slice of the same code
        path)."""
        ds = generate_trucks(10, samples_per_truck=25, seed=7)
        assert ds.total_segments() == 10 * 24


class TestWorkloads:
    def test_query_is_slice_of_data(self, tiny_dataset):
        rng = random.Random(5)
        query, (t0, t1) = make_query(tiny_dataset, 0.1, rng)
        assert query.t_start == pytest.approx(t0)
        assert query.t_end == pytest.approx(t1)
        # the source trajectory contains the query geometrically
        best, best_id = math.inf, None
        from repro import dissim_exact

        for tr in tiny_dataset:
            d = dissim_exact(query, tr, (t0, t1))
            if d < best:
                best, best_id = d, tr.object_id
        assert best == pytest.approx(0.0, abs=1e-9)

    def test_full_length_query(self, tiny_dataset):
        rng = random.Random(6)
        query, (t0, t1) = make_query(tiny_dataset, 1.0, rng)
        span = tiny_dataset.time_span()
        assert (t0, t1) == span

    def test_invalid_length_rejected(self, tiny_dataset):
        rng = random.Random(7)
        with pytest.raises(QueryError):
            make_query(tiny_dataset, 0.0, rng)
        with pytest.raises(QueryError):
            make_query(tiny_dataset, 1.5, rng)

    def test_workload_reproducible(self, tiny_dataset):
        w1 = make_workload(tiny_dataset, 5, 0.1, seed=3)
        w2 = make_workload(tiny_dataset, 5, 0.1, seed=3)
        assert len(w1) == 5
        for (qa, pa), (qb, pb) in zip(w1, w2):
            assert qa == qb and pa == pb

    def test_workload_unique_query_ids(self, tiny_dataset):
        w = make_workload(tiny_dataset, 5, 0.1, seed=3)
        ids = [q.object_id for q, _p in w]
        assert len(set(ids)) == 5

    def test_workload_bad_count_rejected(self, tiny_dataset):
        with pytest.raises(QueryError):
            make_workload(tiny_dataset, 0, 0.1)
