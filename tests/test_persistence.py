"""Round-trip tests for index persistence (save/load on disk)."""

import json
import random

import pytest

from repro import (
    RStarTree,
    RTree3D,
    STRTree,
    TBTree,
    Trajectory,
    bfmst_search,
    generate_gstd,
    load_index,
    save_index,
)
from repro.datagen import make_query
from repro.exceptions import IndexError_, StorageError


@pytest.fixture(scope="module")
def dataset():
    return generate_gstd(15, samples_per_object=40, seed=21)


@pytest.mark.parametrize("cls", [RTree3D, RStarTree, TBTree, STRTree])
class TestRoundTrip:
    def test_search_results_survive_reload(self, cls, dataset, tmp_path):
        index = cls()
        index.bulk_insert(dataset)
        index.finalize()
        path = tmp_path / "index.pages"
        save_index(index, path)

        loaded = load_index(path)
        rng = random.Random(4)
        for _ in range(3):
            query, period = make_query(dataset, 0.2, rng)
            got, _ = bfmst_search(loaded, query, period, k=3)
            want, _ = bfmst_search(index, query, period, k=3)
            assert [m.trajectory_id for m in got] == [
                m.trajectory_id for m in want
            ]
            for g, w in zip(got, want):
                assert g.dissim == pytest.approx(w.dissim)
        loaded.pagefile.close()

    def test_metadata_restored(self, cls, dataset, tmp_path):
        index = cls()
        index.bulk_insert(dataset)
        index.finalize()
        path = tmp_path / "index.pages"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.num_entries == index.num_entries
        assert loaded.num_nodes == index.num_nodes
        assert loaded.root_page == index.root_page
        assert loaded.max_speed == pytest.approx(index.max_speed)
        assert loaded.trajectory_ids == index.trajectory_ids
        assert type(loaded) is cls
        loaded.pagefile.close()

    def test_loaded_index_is_read_only(self, cls, dataset, tmp_path):
        index = cls()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        loaded = load_index(path)
        with pytest.raises(IndexError_):
            loaded.insert(Trajectory(9999, [(0, 0, 0), (1, 1, 1)]))
        loaded.pagefile.close()


class TestTBTreeChainSurvives:
    def test_trajectory_segments_on_loaded_tree(self, dataset, tmp_path):
        index = TBTree(page_size=512)  # force multi-leaf chains
        index.bulk_insert(dataset)
        path = tmp_path / "tb.pages"
        save_index(index, path)
        loaded = load_index(path)
        some_id = next(iter(dataset)).object_id
        got = [e.segment for e in loaded.trajectory_segments(some_id)]
        assert got == list(dataset[some_id].segments())
        loaded.pagefile.close()


class TestErrorHandling:
    def test_refuses_overwrite(self, dataset, tmp_path):
        index = RTree3D()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        with pytest.raises(StorageError):
            save_index(index, path)

    def test_missing_sidecar(self, tmp_path):
        path = tmp_path / "index.pages"
        path.write_bytes(b"\x00" * 4096)
        with pytest.raises(StorageError):
            load_index(path)

    def test_corrupt_sidecar(self, dataset, tmp_path):
        index = RTree3D()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        (tmp_path / "index.pages.meta.json").write_text("{oops")
        with pytest.raises(StorageError):
            load_index(path)

    def test_unknown_kind(self, dataset, tmp_path):
        index = RTree3D()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        meta_path = tmp_path / "index.pages.meta.json"
        meta = json.loads(meta_path.read_text())
        meta["kind"] = "btree"
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StorageError):
            load_index(path)

    def test_wrong_version(self, dataset, tmp_path):
        index = RTree3D()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        meta_path = tmp_path / "index.pages.meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StorageError):
            load_index(path)
