"""Round-trip tests for index persistence (save/load on disk) — single
page files and sharded manifest directories."""

import json
import random

import pytest

from repro import (
    RStarTree,
    RTree3D,
    STRTree,
    TBTree,
    Trajectory,
    bfmst_search,
    generate_gstd,
    load_index,
    save_index,
)
from repro.datagen import make_query
from repro.exceptions import IndexError_, StorageError
from repro.sharding import (
    MANIFEST_NAME,
    ShardedDataset,
    build_sharded_index,
    load_sharded_index,
    make_partitioner,
    save_sharded_index,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_gstd(15, samples_per_object=40, seed=21)


@pytest.mark.parametrize("cls", [RTree3D, RStarTree, TBTree, STRTree])
class TestRoundTrip:
    def test_search_results_survive_reload(self, cls, dataset, tmp_path):
        index = cls()
        index.bulk_insert(dataset)
        index.finalize()
        path = tmp_path / "index.pages"
        save_index(index, path)

        loaded = load_index(path)
        rng = random.Random(4)
        for _ in range(3):
            query, period = make_query(dataset, 0.2, rng)
            got, _ = bfmst_search(loaded, query, period, k=3)
            want, _ = bfmst_search(index, query, period, k=3)
            assert [m.trajectory_id for m in got] == [
                m.trajectory_id for m in want
            ]
            for g, w in zip(got, want):
                assert g.dissim == pytest.approx(w.dissim)
        loaded.pagefile.close()

    def test_metadata_restored(self, cls, dataset, tmp_path):
        index = cls()
        index.bulk_insert(dataset)
        index.finalize()
        path = tmp_path / "index.pages"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.num_entries == index.num_entries
        assert loaded.num_nodes == index.num_nodes
        assert loaded.root_page == index.root_page
        assert loaded.max_speed == pytest.approx(index.max_speed)
        assert loaded.trajectory_ids == index.trajectory_ids
        assert type(loaded) is cls
        loaded.pagefile.close()

    def test_loaded_index_is_read_only(self, cls, dataset, tmp_path):
        index = cls()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        loaded = load_index(path)
        with pytest.raises(IndexError_):
            loaded.insert(Trajectory(9999, [(0, 0, 0), (1, 1, 1)]))
        loaded.pagefile.close()


class TestTBTreeChainSurvives:
    def test_trajectory_segments_on_loaded_tree(self, dataset, tmp_path):
        index = TBTree(page_size=512)  # force multi-leaf chains
        index.bulk_insert(dataset)
        path = tmp_path / "tb.pages"
        save_index(index, path)
        loaded = load_index(path)
        some_id = next(iter(dataset)).object_id
        got = [e.segment for e in loaded.trajectory_segments(some_id)]
        assert got == list(dataset[some_id].segments())
        loaded.pagefile.close()


class TestErrorHandling:
    def test_refuses_overwrite(self, dataset, tmp_path):
        index = RTree3D()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        with pytest.raises(StorageError):
            save_index(index, path)

    def test_missing_sidecar(self, tmp_path):
        path = tmp_path / "index.pages"
        path.write_bytes(b"\x00" * 4096)
        with pytest.raises(StorageError):
            load_index(path)

    def test_corrupt_sidecar(self, dataset, tmp_path):
        index = RTree3D()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        (tmp_path / "index.pages.meta.json").write_text("{oops")
        with pytest.raises(StorageError):
            load_index(path)

    def test_unknown_kind(self, dataset, tmp_path):
        index = RTree3D()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        meta_path = tmp_path / "index.pages.meta.json"
        meta = json.loads(meta_path.read_text())
        meta["kind"] = "btree"
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StorageError):
            load_index(path)

    def test_wrong_version(self, dataset, tmp_path):
        index = RTree3D()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        meta_path = tmp_path / "index.pages.meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StorageError):
            load_index(path)


# ----------------------------------------------------------------------
# sharded manifest directories
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sharded_world(dataset):
    sharded_ds = ShardedDataset.partition(
        dataset, make_partitioner("hash", 3)
    )
    index = build_sharded_index(sharded_ds, RTree3D, page_size=1024)
    yield dataset, sharded_ds, index
    index.close()


def _save(sharded_world, tmp_path):
    _, _, index = sharded_world
    directory = tmp_path / "shards"
    save_sharded_index(index, directory)
    return directory


@pytest.mark.parametrize("cls", [RTree3D, TBTree])
class TestShardedRoundTrip:
    def test_manifest_and_queries_survive_reload(
        self, cls, dataset, tmp_path
    ):
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner("temporal", 3)
        )
        index = build_sharded_index(sharded_ds, cls, page_size=1024)
        directory = tmp_path / "shards"
        save_sharded_index(index, directory)

        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        assert manifest["num_shards"] == 3
        assert manifest["partitioner"]["kind"] == "temporal"
        assert len(manifest["shards"]) == 3
        for entry in manifest["shards"]:
            assert (directory / entry["file"]).exists()

        loaded = load_sharded_index(directory)
        try:
            assert loaded.num_shards == index.num_shards
            assert loaded.num_nodes == index.num_nodes
            assert loaded.num_entries == index.num_entries
            assert loaded.trajectory_ids == index.trajectory_ids
            assert loaded.max_speed == pytest.approx(index.max_speed)
            rng = random.Random(4)
            for _ in range(2):
                query, period = make_query(dataset, 0.2, rng)
                got = bfmst_search(loaded, None, query, period=period, k=3)
                want = bfmst_search(index, None, query, period=period, k=3)
                assert [
                    (m.trajectory_id, m.dissim) for m in got.matches
                ] == [(m.trajectory_id, m.dissim) for m in want.matches]
        finally:
            loaded.close()
            index.close()


class TestShardedIdentityAfterReload:
    def test_reloaded_equals_unsharded_tree(self, sharded_world, tmp_path):
        dataset, _, _ = sharded_world
        directory = _save(sharded_world, tmp_path)
        single = RTree3D(page_size=1024)
        single.bulk_insert(dataset)
        single.finalize()
        loaded = load_sharded_index(directory)
        try:
            rng = random.Random(9)
            for _ in range(3):
                query, period = make_query(dataset, 0.2, rng)
                got = bfmst_search(loaded, None, query, period=period, k=5)
                want = bfmst_search(single, None, query, period=period, k=5)
                assert [
                    (m.trajectory_id, m.dissim, m.error_bound, m.exact)
                    for m in got.matches
                ] == [
                    (m.trajectory_id, m.dissim, m.error_bound, m.exact)
                    for m in want.matches
                ]
        finally:
            loaded.close()


class TestShardedErrorHandling:
    def test_refuses_overwrite(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        _, _, index = sharded_world
        with pytest.raises(StorageError):
            save_sharded_index(index, directory)

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(StorageError):
            load_sharded_index(tmp_path / "empty")

    def test_corrupt_manifest(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        (directory / MANIFEST_NAME).write_text("{oops")
        with pytest.raises(StorageError):
            load_sharded_index(directory)

    def test_wrong_manifest_version(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        manifest["version"] = 999
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            load_sharded_index(directory)

    def test_missing_shard_file(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        victim = directory / manifest["shards"][1]["file"]
        victim.unlink()
        # DiskPageFile would silently create a missing file on open;
        # the loader must notice the hole first.
        with pytest.raises(StorageError, match="missing shard"):
            load_sharded_index(directory)

    def test_shard_count_mismatch(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        manifest["shards"] = manifest["shards"][:2]
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            load_sharded_index(directory)

    def test_entry_count_mismatch(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        manifest["shards"][0]["num_entries"] += 1
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            load_sharded_index(directory)
