"""Round-trip tests for index persistence (save/load on disk) — single
page files and sharded manifest directories, the v2 durability
guarantees (atomic commit, truncation detection, digest verification),
backend identity (disk vs mmap) and the v1 migration path."""

import json
import os
import random

import pytest

from repro import (
    RStarTree,
    RTree3D,
    STRTree,
    TBTree,
    Trajectory,
    bfmst_search,
    generate_gstd,
    load_index,
    save_index,
)
from repro.datagen import make_query
from repro.exceptions import IndexError_, StorageError
from repro.index import fsck, fsck_index, migrate_index_v1
from repro.storage import unframe_page
from repro.sharding import (
    MANIFEST_NAME,
    ShardedDataset,
    build_sharded_index,
    load_sharded_index,
    make_partitioner,
    save_sharded_index,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_gstd(15, samples_per_object=40, seed=21)


@pytest.mark.parametrize("cls", [RTree3D, RStarTree, TBTree, STRTree])
class TestRoundTrip:
    def test_search_results_survive_reload(self, cls, dataset, tmp_path):
        index = cls()
        index.bulk_insert(dataset)
        index.finalize()
        path = tmp_path / "index.pages"
        save_index(index, path)

        loaded = load_index(path)
        rng = random.Random(4)
        for _ in range(3):
            query, period = make_query(dataset, 0.2, rng)
            got = bfmst_search(loaded, None, query, period=period, k=3).matches
            want = bfmst_search(index, None, query, period=period, k=3).matches
            assert [m.trajectory_id for m in got] == [
                m.trajectory_id for m in want
            ]
            for g, w in zip(got, want):
                assert g.dissim == pytest.approx(w.dissim)
        loaded.pagefile.close()

    def test_metadata_restored(self, cls, dataset, tmp_path):
        index = cls()
        index.bulk_insert(dataset)
        index.finalize()
        path = tmp_path / "index.pages"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.num_entries == index.num_entries
        assert loaded.num_nodes == index.num_nodes
        assert loaded.root_page == index.root_page
        assert loaded.max_speed == pytest.approx(index.max_speed)
        assert loaded.trajectory_ids == index.trajectory_ids
        assert type(loaded) is cls
        loaded.pagefile.close()

    def test_loaded_index_is_read_only(self, cls, dataset, tmp_path):
        index = cls()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        loaded = load_index(path)
        with pytest.raises(IndexError_):
            loaded.insert(Trajectory(9999, [(0, 0, 0), (1, 1, 1)]))
        loaded.pagefile.close()


class TestTBTreeChainSurvives:
    def test_trajectory_segments_on_loaded_tree(self, dataset, tmp_path):
        index = TBTree(page_size=512)  # force multi-leaf chains
        index.bulk_insert(dataset)
        path = tmp_path / "tb.pages"
        save_index(index, path)
        loaded = load_index(path)
        some_id = next(iter(dataset)).object_id
        got = [e.segment for e in loaded.trajectory_segments(some_id)]
        assert got == list(dataset[some_id].segments())
        loaded.pagefile.close()


class TestErrorHandling:
    def test_refuses_overwrite(self, dataset, tmp_path):
        index = RTree3D()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        with pytest.raises(StorageError):
            save_index(index, path)

    def test_missing_sidecar(self, tmp_path):
        path = tmp_path / "index.pages"
        path.write_bytes(b"\x00" * 4096)
        with pytest.raises(StorageError):
            load_index(path)

    def test_corrupt_sidecar(self, dataset, tmp_path):
        index = RTree3D()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        (tmp_path / "index.pages.meta.json").write_text("{oops")
        with pytest.raises(StorageError):
            load_index(path)

    def test_unknown_kind(self, dataset, tmp_path):
        index = RTree3D()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        meta_path = tmp_path / "index.pages.meta.json"
        meta = json.loads(meta_path.read_text())
        meta["kind"] = "btree"
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StorageError):
            load_index(path)

    def test_wrong_version(self, dataset, tmp_path):
        index = RTree3D()
        index.bulk_insert(dataset)
        path = tmp_path / "index.pages"
        save_index(index, path)
        meta_path = tmp_path / "index.pages.meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StorageError):
            load_index(path)


# ----------------------------------------------------------------------
# sharded manifest directories
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sharded_world(dataset):
    sharded_ds = ShardedDataset.partition(
        dataset, make_partitioner("hash", 3)
    )
    index = build_sharded_index(sharded_ds, RTree3D, page_size=1024)
    yield dataset, sharded_ds, index
    index.close()


def _save(sharded_world, tmp_path):
    _, _, index = sharded_world
    directory = tmp_path / "shards"
    save_sharded_index(index, directory)
    return directory


@pytest.mark.parametrize("cls", [RTree3D, TBTree])
class TestShardedRoundTrip:
    def test_manifest_and_queries_survive_reload(
        self, cls, dataset, tmp_path
    ):
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner("temporal", 3)
        )
        index = build_sharded_index(sharded_ds, cls, page_size=1024)
        directory = tmp_path / "shards"
        save_sharded_index(index, directory)

        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        assert manifest["num_shards"] == 3
        assert manifest["partitioner"]["kind"] == "temporal"
        assert len(manifest["shards"]) == 3
        for entry in manifest["shards"]:
            assert (directory / entry["file"]).exists()

        loaded = load_sharded_index(directory)
        try:
            assert loaded.num_shards == index.num_shards
            assert loaded.num_nodes == index.num_nodes
            assert loaded.num_entries == index.num_entries
            assert loaded.trajectory_ids == index.trajectory_ids
            assert loaded.max_speed == pytest.approx(index.max_speed)
            rng = random.Random(4)
            for _ in range(2):
                query, period = make_query(dataset, 0.2, rng)
                got = bfmst_search(loaded, None, query, period=period, k=3)
                want = bfmst_search(index, None, query, period=period, k=3)
                assert [
                    (m.trajectory_id, m.dissim) for m in got.matches
                ] == [(m.trajectory_id, m.dissim) for m in want.matches]
        finally:
            loaded.close()
            index.close()


class TestShardedIdentityAfterReload:
    def test_reloaded_equals_unsharded_tree(self, sharded_world, tmp_path):
        dataset, _, _ = sharded_world
        directory = _save(sharded_world, tmp_path)
        single = RTree3D(page_size=1024)
        single.bulk_insert(dataset)
        single.finalize()
        loaded = load_sharded_index(directory)
        try:
            rng = random.Random(9)
            for _ in range(3):
                query, period = make_query(dataset, 0.2, rng)
                got = bfmst_search(loaded, None, query, period=period, k=5)
                want = bfmst_search(single, None, query, period=period, k=5)
                assert [
                    (m.trajectory_id, m.dissim, m.error_bound, m.exact)
                    for m in got.matches
                ] == [
                    (m.trajectory_id, m.dissim, m.error_bound, m.exact)
                    for m in want.matches
                ]
        finally:
            loaded.close()


class TestShardedErrorHandling:
    def test_refuses_overwrite(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        _, _, index = sharded_world
        with pytest.raises(StorageError):
            save_sharded_index(index, directory)

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(StorageError):
            load_sharded_index(tmp_path / "empty")

    def test_corrupt_manifest(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        (directory / MANIFEST_NAME).write_text("{oops")
        with pytest.raises(StorageError):
            load_sharded_index(directory)

    def test_wrong_manifest_version(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        manifest["version"] = 999
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            load_sharded_index(directory)

    def test_missing_shard_file(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        victim = directory / manifest["shards"][1]["file"]
        victim.unlink()
        # DiskPageFile would silently create a missing file on open;
        # the loader must notice the hole first.
        with pytest.raises(StorageError, match="missing shard"):
            load_sharded_index(directory)

    def test_shard_count_mismatch(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        manifest["shards"] = manifest["shards"][:2]
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            load_sharded_index(directory)

    def test_entry_count_mismatch(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        manifest["shards"][0]["num_entries"] += 1
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            load_sharded_index(directory)


# ----------------------------------------------------------------------
# v2 durability: atomic commit, truncation detection, digest verify
# ----------------------------------------------------------------------
def _saved_index(dataset, tmp_path, cls=RTree3D, **kw):
    index = cls(**kw)
    index.bulk_insert(dataset)
    index.finalize()
    path = tmp_path / "index.pages"
    meta = save_index(index, path)
    return index, path, meta


class TestDurability:
    def test_save_returns_meta_with_digest(self, dataset, tmp_path):
        _, path, meta = _saved_index(dataset, tmp_path)
        assert meta["version"] == 2
        assert meta["num_pages"] * meta["page_size"] == path.stat().st_size
        sidecar = json.loads((tmp_path / "index.pages.meta.json").read_text())
        assert sidecar == meta

    def test_no_temporaries_left_behind(self, dataset, tmp_path):
        _saved_index(dataset, tmp_path)
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_failed_save_leaves_no_partial_file(self, dataset, tmp_path):
        index = RTree3D()
        index.bulk_insert(dataset)
        index.finalize()

        def boom(page_id):
            raise RuntimeError("injected read failure")

        index.pagefile.read = boom
        path = tmp_path / "index.pages"
        with pytest.raises(RuntimeError, match="injected"):
            save_index(index, path)
        # Neither a torn page file nor a stale temporary may survive.
        assert list(tmp_path.iterdir()) == []

    def test_truncated_file_rejected(self, dataset, tmp_path):
        _, path, meta = _saved_index(dataset, tmp_path)
        os.truncate(path, path.stat().st_size - 100)  # mid-page cut
        with pytest.raises(StorageError, match="truncated"):
            load_index(path)

    def test_whole_page_truncation_rejected(self, dataset, tmp_path):
        _, path, meta = _saved_index(dataset, tmp_path)
        os.truncate(path, path.stat().st_size - meta["page_size"])
        with pytest.raises(StorageError, match="truncated"):
            load_index(path)

    def test_verify_happy_path(self, dataset, tmp_path):
        index, path, _ = _saved_index(dataset, tmp_path)
        loaded = load_index(path, verify=True)
        rng = random.Random(11)
        query, period = make_query(dataset, 0.2, rng)
        got = bfmst_search(loaded, None, query, period=period, k=3).matches
        want = bfmst_search(index, None, query, period=period, k=3).matches
        assert [m.trajectory_id for m in got] == [
            m.trajectory_id for m in want
        ]
        loaded.pagefile.close()

    def test_verify_detects_tamper(self, dataset, tmp_path):
        _, path, _ = _saved_index(dataset, tmp_path)
        with open(path, "r+b") as fh:
            fh.seek(path.stat().st_size // 2)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(StorageError, match="digest"):
            load_index(path, verify=True)

    def test_unknown_backend_rejected(self, dataset, tmp_path):
        _, path, _ = _saved_index(dataset, tmp_path)
        with pytest.raises(StorageError, match="backend"):
            load_index(path, backend="tape")


# ----------------------------------------------------------------------
# backend identity — ISSUE acceptance: k-MST answers byte-identical on
# memory/disk/mmap for both trees, across all four partitioners
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls", [RTree3D, TBTree])
class TestBackendIdentity:
    def test_single_index_identical_on_all_backends(
        self, cls, dataset, tmp_path
    ):
        index, path, _ = _saved_index(dataset, tmp_path, cls=cls)
        disk = load_index(path, backend="disk")
        mm = load_index(path, backend="mmap")
        try:
            rng = random.Random(7)
            for _ in range(3):
                query, period = make_query(dataset, 0.2, rng)
                answers = []
                for idx in (index, disk, mm):
                    matches = bfmst_search(idx, None, query, period=period, k=5).matches
                    answers.append(
                        [
                            (m.trajectory_id, m.dissim, m.error_bound, m.exact)
                            for m in matches
                        ]
                    )
                assert answers[0] == answers[1] == answers[2]
            assert mm.pagefile.stats.mmap_reads > 0
            assert mm.pagefile.stats.physical_reads == 0
        finally:
            disk.pagefile.close()
            mm.pagefile.close()

    @pytest.mark.parametrize(
        "part", ["round_robin", "hash", "spatial", "temporal"]
    )
    def test_sharded_identical_on_all_backends(
        self, cls, part, dataset, tmp_path
    ):
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner(part, 3)
        )
        index = build_sharded_index(sharded_ds, cls, page_size=1024)
        directory = tmp_path / "shards"
        save_sharded_index(index, directory)
        disk = load_sharded_index(directory, backend="disk")
        mm = load_sharded_index(directory, backend="mmap", verify=True)
        try:
            rng = random.Random(13)
            for _ in range(2):
                query, period = make_query(dataset, 0.2, rng)
                answers = []
                for idx in (index, disk, mm):
                    result = bfmst_search(idx, None, query, period=period, k=5)
                    answers.append(
                        [
                            (m.trajectory_id, m.dissim, m.error_bound, m.exact)
                            for m in result.matches
                        ]
                    )
                assert answers[0] == answers[1] == answers[2]
        finally:
            index.close()
            disk.close()
            mm.close()


# ----------------------------------------------------------------------
# v1 migration
# ----------------------------------------------------------------------
def _downgrade_to_v1(path, meta):
    """Rewrite a saved v2 index as a genuine v1 file: raw unframed node
    payloads in the page slots, a ``"version": 1`` sidecar without the
    v2 digest fields."""
    page_size = meta["page_size"]
    raw = path.read_bytes()
    v1_pages = []
    for pid in range(len(raw) // page_size):
        page = raw[pid * page_size : (pid + 1) * page_size]
        if not page.strip(b"\x00"):
            v1_pages.append(page)
            continue
        _, payload = unframe_page(page, pid)
        v1_pages.append(bytes(payload).ljust(page_size, b"\x00"))
    path.write_bytes(b"".join(v1_pages))
    v1_meta = {
        k: v
        for k, v in meta.items()
        if k not in ("num_pages", "pages_sha256")
    }
    v1_meta["version"] = 1
    sidecar = path.with_name(path.name + ".meta.json")
    sidecar.write_text(json.dumps(v1_meta))


class TestV1Migration:
    @pytest.mark.parametrize("cls", [RTree3D, TBTree])
    def test_v1_file_rejected_with_migration_pointer(
        self, cls, dataset, tmp_path
    ):
        _, path, meta = _saved_index(dataset, tmp_path, cls=cls)
        _downgrade_to_v1(path, meta)
        with pytest.raises(StorageError, match="migrate_index_v1"):
            load_index(path)

    @pytest.mark.parametrize("cls", [RTree3D, TBTree])
    def test_migration_round_trip(self, cls, dataset, tmp_path):
        index, path, meta = _saved_index(dataset, tmp_path, cls=cls)
        _downgrade_to_v1(path, meta)
        dst = tmp_path / "migrated.pages"
        new_meta = migrate_index_v1(path, dst)
        assert new_meta["version"] == 2
        assert fsck_index(dst).ok

        loaded = load_index(dst, verify=True)
        try:
            rng = random.Random(5)
            for _ in range(3):
                query, period = make_query(dataset, 0.2, rng)
                got = bfmst_search(loaded, None, query, period=period, k=3).matches
                want = bfmst_search(index, None, query, period=period, k=3).matches
                assert [
                    (m.trajectory_id, m.dissim) for m in got
                ] == [(m.trajectory_id, m.dissim) for m in want]
        finally:
            loaded.pagefile.close()

    def test_migrate_rejects_v2_input(self, dataset, tmp_path):
        _, path, _ = _saved_index(dataset, tmp_path)
        with pytest.raises(StorageError, match="expects a v1"):
            migrate_index_v1(path, tmp_path / "out.pages")

    def test_migrate_refuses_overwrite(self, dataset, tmp_path):
        _, path, meta = _saved_index(dataset, tmp_path)
        _downgrade_to_v1(path, meta)
        dst = tmp_path / "out.pages"
        dst.write_bytes(b"")
        with pytest.raises(StorageError, match="refusing to overwrite"):
            migrate_index_v1(path, dst)


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------
class TestFsck:
    def test_clean_index_reports_ok(self, dataset, tmp_path):
        _, path, meta = _saved_index(dataset, tmp_path)
        report = fsck_index(path)
        assert report.ok
        assert report.errors == []
        assert report.bad_pages == []
        assert len(report.pages) == meta["num_pages"]
        assert "OK" in report.summary()

    def test_kill_a_byte_anywhere_is_detected(self, dataset, tmp_path):
        """The on-disk half of the kill-a-byte property: flip one byte
        at sampled offsets across the whole persisted file and fsck must
        flag the index every time (digest mismatch and/or a bad page)."""
        _, path, _ = _saved_index(dataset, tmp_path)
        pristine = path.read_bytes()
        rng = random.Random(99)
        offsets = rng.sample(range(len(pristine)), 24)
        for off in offsets:
            mutated = bytearray(pristine)
            mutated[off] ^= 0xFF
            path.write_bytes(bytes(mutated))
            report = fsck_index(path)
            assert not report.ok, f"flip at offset {off} went undetected"
            assert report.errors or report.bad_pages
        path.write_bytes(pristine)
        assert fsck_index(path).ok

    def test_missing_sidecar_is_an_error(self, dataset, tmp_path):
        _, path, _ = _saved_index(dataset, tmp_path)
        (tmp_path / "index.pages.meta.json").unlink()
        report = fsck_index(path)
        assert not report.ok
        assert any("sidecar" in e for e in report.errors)

    def test_missing_page_file_is_an_error(self, dataset, tmp_path):
        _, path, _ = _saved_index(dataset, tmp_path)
        path.unlink()
        report = fsck_index(path)
        assert not report.ok
        assert any("missing page file" in e for e in report.errors)

    def test_truncation_is_an_error(self, dataset, tmp_path):
        _, path, _ = _saved_index(dataset, tmp_path)
        os.truncate(path, path.stat().st_size - 100)
        report = fsck_index(path)
        assert not report.ok
        assert any("truncated" in e for e in report.errors)

    def test_fsck_dispatches_on_directories(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        report = fsck(directory)
        assert report.ok
        assert len(report.shards) == 3
        assert all(s.ok for s in report.shards)

    def test_sharded_corruption_is_localised(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        victim = directory / manifest["shards"][1]["file"]
        with open(victim, "r+b") as fh:
            fh.seek(20)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0xFF]))
        report = fsck(directory)
        assert not report.ok
        verdicts = [s.ok for s in report.shards]
        assert verdicts.count(False) == 1
        assert "CORRUPT" in report.summary()

    def test_sharded_missing_shard_file(self, sharded_world, tmp_path):
        directory = _save(sharded_world, tmp_path)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        (directory / manifest["shards"][0]["file"]).unlink()
        report = fsck(directory)
        assert not report.ok
        assert any("missing shard" in e for e in report.errors)
