"""Tests for TD-TR, Douglas-Peucker and uniform downsampling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Trajectory, td_tr, td_tr_fraction
from repro.compression import (
    douglas_peucker,
    synchronized_euclidean_distance,
    uniform_downsample,
)
from repro.exceptions import TrajectoryError

from conftest import trajectories


def zigzag(n=20, amp=1.0):
    return Trajectory(
        0, [(float(i), amp * ((-1) ** i), float(i)) for i in range(n)]
    )


class TestSED:
    def test_zero_on_straight_line(self):
        tr = Trajectory(0, [(0, 0, 0), (1, 0, 1), (2, 0, 2)])
        assert synchronized_euclidean_distance(tr, 1, 0, 2) == pytest.approx(0.0)

    def test_detects_time_deviation(self):
        """The point is ON the chord spatially but at the wrong time —
        plain Douglas-Peucker misses this, SED must not."""
        # Object sits at x=0.1 at time 5, then rushes to x=1 at 10;
        # straight movement 0->10 would put it at x=0.5 at t=5.
        tr = Trajectory(0, [(0, 0, 0), (0.1, 0, 5), (1, 0, 10)])
        sed = synchronized_euclidean_distance(tr, 1, 0, 2)
        assert sed == pytest.approx(0.4)

    def test_perpendicular_vs_sed(self):
        tr = Trajectory(0, [(0, 0, 0), (0.1, 0, 5), (1, 0, 10)])
        dp = douglas_peucker(tr, 0.2)
        td = td_tr(tr, 0.2)
        assert len(dp) == 2  # spatially on the line: dropped
        assert len(td) == 3  # temporally off: kept


class TestTDTR:
    def test_keeps_endpoints(self):
        tr = zigzag()
        out = td_tr(tr, 1e9)
        assert len(out) == 2
        assert out[0] == tr[0] and out[-1] == tr[-1]

    def test_zero_tolerance_keeps_everything_noncollinear(self):
        tr = zigzag()
        assert len(td_tr(tr, 0.0)) == len(tr)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(TrajectoryError):
            td_tr(zigzag(), -1.0)
        with pytest.raises(TrajectoryError):
            td_tr_fraction(zigzag(), -0.1)

    def test_fraction_p_zero_is_identity(self):
        tr = zigzag()
        assert td_tr_fraction(tr, 0.0) is tr

    def test_vertex_count_decreases_with_p(self):
        """Figure 8's qualitative content: increasing p sheds
        vertices monotonically while keeping the sketch."""
        tr = zigzag(60, amp=0.3)
        counts = [len(td_tr_fraction(tr, p)) for p in (0.001, 0.01, 0.02, 0.1)]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] >= 2

    @given(trajectories(min_samples=4, max_samples=12))
    @settings(max_examples=60, deadline=None)
    def test_all_dropped_points_within_tolerance(self, tr):
        """After compression, every original sample is within the SED
        tolerance of the compressed trajectory's interpolation."""
        tol = 0.5
        out = td_tr(tr, tol)
        for p in tr:
            q = out.position_at(p.t)
            dist = ((p.x - q.x) ** 2 + (p.y - q.y) ** 2) ** 0.5
            assert dist <= tol + 1e-9

    @given(trajectories(min_samples=3, max_samples=12))
    @settings(max_examples=60, deadline=None)
    def test_kept_samples_are_original(self, tr):
        out = td_tr(tr, 0.3)
        originals = set(p.as_tuple() for p in tr)
        for p in out:
            assert p.as_tuple() in originals

    def test_id_preserved(self):
        tr = zigzag().with_id(42)
        assert td_tr(tr, 0.5).object_id == 42


class TestUniformDownsample:
    def test_keeps_endpoints(self):
        tr = zigzag(11)
        out = uniform_downsample(tr, 3)
        assert out[0] == tr[0] and out[-1] == tr[-1]
        assert [p.t for p in out] == [0.0, 3.0, 6.0, 9.0, 10.0]

    def test_every_one_is_identity(self):
        tr = zigzag(7)
        assert list(uniform_downsample(tr, 1)) == list(tr)

    def test_bad_step_rejected(self):
        with pytest.raises(TrajectoryError):
            uniform_downsample(zigzag(), 0)


class TestDouglasPeucker:
    def test_collinear_collapse(self):
        tr = Trajectory(0, [(0, 0, 0), (1, 0, 1), (2, 0, 2), (3, 0, 3)])
        assert len(douglas_peucker(tr, 0.01)) == 2

    def test_spike_kept(self):
        tr = Trajectory(0, [(0, 0, 0), (1, 5, 1), (2, 0, 2)])
        assert len(douglas_peucker(tr, 0.5)) == 3

    def test_negative_tolerance_rejected(self):
        with pytest.raises(TrajectoryError):
            douglas_peucker(zigzag(), -1.0)
