"""Smoke + semantics tests for the experiment harness (tiny scale).

These don't reproduce the paper's numbers (the benchmarks do, at a
larger scale); they verify that the harness machinery measures what it
claims to measure.
"""

import pytest

from repro.datagen import make_workload
from repro.experiments import (
    DatasetSpec,
    build_dataset,
    build_index,
    compression_profile,
    format_table,
    q1_cardinality,
    q3_k,
    quality_experiment,
    run_workload,
    scaled_specs,
    table2,
)
from repro.datagen import generate_trucks


TINY = DatasetSpec("tiny", "gstd", 8, 25, "Lognormal", 0.6)


class TestDatasets:
    def test_build_dataset_kinds(self):
        gstd = build_dataset(TINY)
        assert len(gstd) == 8
        trucks = build_dataset(
            DatasetSpec("t", "trucks", 4, 20, "Lognormal", 1.0)
        )
        assert len(trucks) == 4
        with pytest.raises(ValueError):
            build_dataset(DatasetSpec("x", "nope", 1, 10, "L", 1.0))

    def test_build_index_kinds(self):
        ds = build_dataset(TINY)
        rtree = build_index(ds, "rtree")
        tbtree = build_index(ds, "tbtree")
        assert rtree.num_entries == tbtree.num_entries == ds.total_segments()
        with pytest.raises(ValueError):
            build_index(ds, "btree")

    def test_table2_rows(self):
        rows = table2(specs=[TINY])
        assert len(rows) == 1
        row = rows[0]
        assert row["dataset"] == "tiny"
        assert row["objects"] == 8
        assert row["entries"] == 8 * 24
        assert row["rtree_mb"] > 0 and row["tbtree_mb"] > 0

    def test_scaled_specs_shrink_samples_only(self):
        specs = scaled_specs(0.05)
        names = [s.name for s in specs]
        assert names == ["Trucks", "S0100", "S0250", "S0500", "S1000"]
        assert specs[1].num_objects == 100
        assert specs[1].samples_per_object == 100


class TestQuality:
    def test_dissim_beats_edr_on_compressed_queries(self):
        """The Figure 9 headline at toy scale: DISSIM never fails,
        EDR degrades as p grows."""
        ds = generate_trucks(10, samples_per_truck=60, seed=4)
        points = quality_experiment(
            ds,
            p_values=(0.01, 0.05),
            measures=("DISSIM", "EDR"),
            max_queries=6,
            seed=1,
        )
        by = {(pt.measure, pt.p): pt for pt in points}
        assert by[("DISSIM", 0.01)].failures == 0
        assert by[("DISSIM", 0.05)].failures == 0
        assert (
            by[("EDR", 0.05)].failures >= by[("DISSIM", 0.05)].failures
        )
        for pt in points:
            assert 0.0 <= pt.failure_rate <= 1.0
            assert pt.queries == 6

    def test_all_measures_run(self):
        ds = generate_trucks(6, samples_per_truck=30, seed=4)
        points = quality_experiment(
            ds,
            p_values=(0.02,),
            measures=("DISSIM", "LCSS", "LCSS-I", "EDR", "EDR-I", "DTW"),
            max_queries=3,
        )
        assert {pt.measure for pt in points} == {
            "DISSIM",
            "LCSS",
            "LCSS-I",
            "EDR",
            "EDR-I",
            "DTW",
        }

    def test_unknown_measure_rejected(self):
        ds = generate_trucks(4, samples_per_truck=20, seed=4)
        with pytest.raises(ValueError):
            quality_experiment(ds, p_values=(0.02,), measures=("WAT",))

    def test_compression_profile_monotone(self):
        ds = generate_trucks(3, samples_per_truck=80, seed=4)
        profile = compression_profile(ds[0])
        counts = [c for _p, c in profile]
        assert counts == sorted(counts, reverse=True)
        assert profile[0][1] == 80  # p = 0 keeps everything


class TestPerformance:
    def test_run_workload_verifies_against_scan(self):
        ds = build_dataset(TINY)
        index = build_index(ds, "rtree")
        workload = make_workload(ds, 3, 0.2, seed=2)
        point = run_workload(
            index, ds, workload, k=2, tree_name="rtree",
            variable="objects", value=8.0, verify=True,
        )
        assert point.mismatches == 0
        assert point.queries == 3
        assert point.mean_time_ms > 0.0
        assert 0.0 <= point.mean_pruning_power <= 1.0

    def test_q1_shape(self):
        points = q1_cardinality(
            cardinalities=(6, 12),
            samples_per_object=20,
            num_queries=2,
            trees=("rtree",),
            verify=True,
        )
        assert len(points) == 2
        assert [p.value for p in points] == [6.0, 12.0]
        assert all(p.mismatches == 0 for p in points)
        assert all(p.variable == "objects" for p in points)

    def test_q3_shape(self):
        points = q3_k(
            ks=(1, 3),
            num_objects=8,
            samples_per_object=20,
            num_queries=2,
            trees=("tbtree",),
            verify=True,
        )
        assert [p.value for p in points] == [1.0, 3.0]
        assert all(p.tree == "tbtree" for p in points)
        assert all(p.mismatches == 0 for p in points)


class TestReport:
    def test_format_table(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.23456], ["bb", 7]],
            title="T",
        )
        assert "T" in text
        assert "1.235" in text
        assert "bb" in text

    def test_empty_rows(self):
        text = format_table(["h"], [])
        assert "h" in text
