"""Tests for TrajectoryDataset and the CSV/JSON I/O round trips."""

import pytest

from repro import Trajectory, TrajectoryDataset, read_csv, read_json, write_csv, write_json
from repro.exceptions import TrajectoryError


def make_ds() -> TrajectoryDataset:
    return TrajectoryDataset(
        [
            Trajectory(1, [(0, 0, 0), (3, 4, 1), (3, 4, 2)]),
            Trajectory(2, [(5, 5, 0), (6, 5, 2)]),
        ]
    )


class TestDataset:
    def test_len_iter_contains(self):
        ds = make_ds()
        assert len(ds) == 2
        assert 1 in ds and 3 not in ds
        assert [tr.object_id for tr in ds] == [1, 2]

    def test_getitem_and_missing(self):
        ds = make_ds()
        assert ds[2].object_id == 2
        with pytest.raises(KeyError):
            ds[99]
        assert ds.get(99) is None

    def test_duplicate_id_rejected(self):
        ds = make_ds()
        with pytest.raises(TrajectoryError):
            ds.add(Trajectory(1, [(0, 0, 0), (1, 1, 1)]))

    def test_counts(self):
        ds = make_ds()
        assert ds.total_samples() == 5
        assert ds.total_segments() == 3

    def test_max_speed_and_cache_invalidation(self):
        ds = make_ds()
        assert ds.max_speed() == pytest.approx(5.0)
        ds.add(Trajectory(3, [(0, 0, 0), (20, 0, 1)]))
        assert ds.max_speed() == pytest.approx(20.0)

    def test_empty_dataset_metadata_rejected(self):
        ds = TrajectoryDataset()
        with pytest.raises(TrajectoryError):
            ds.max_speed()
        with pytest.raises(TrajectoryError):
            ds.mbr()
        with pytest.raises(TrajectoryError):
            ds.time_span()
        with pytest.raises(TrajectoryError):
            ds.spatial_moments()

    def test_mbr_and_time_span(self):
        ds = make_ds()
        assert ds.mbr().as_tuple() == (0, 0, 0, 6, 5, 2)
        assert ds.time_span() == (0, 2)

    def test_covering(self):
        ds = make_ds()
        assert {tr.object_id for tr in ds.covering(0, 2)} == {1, 2}
        ds.add(Trajectory(3, [(0, 0, 1), (1, 1, 2)]))
        assert {tr.object_id for tr in ds.covering(0, 2)} == {1, 2}

    def test_remove(self):
        ds = make_ds()
        removed = ds.remove(1)
        assert removed.object_id == 1
        assert 1 not in ds and len(ds) == 1
        with pytest.raises(KeyError):
            ds.remove(1)

    def test_remove_invalidates_max_speed_cache(self):
        ds = make_ds()
        assert ds.max_speed() == pytest.approx(5.0)  # trajectory 1 is fastest
        ds.remove(1)
        assert ds.max_speed() == pytest.approx(0.5)

    def test_normalised_has_zero_mean(self):
        ds = make_ds().normalised()
        mx, my, sx, sy = ds.spatial_moments()
        assert abs(mx) < 1e-12 and abs(my) < 1e-12
        assert sx == pytest.approx(1.0)
        assert sy == pytest.approx(1.0)

    def test_max_spatial_std(self):
        ds = make_ds()
        _, _, sx, sy = ds.spatial_moments()
        assert ds.max_spatial_std() == max(sx, sy)


class TestIO:
    def test_csv_round_trip(self, tmp_path):
        ds = make_ds()
        path = tmp_path / "ds.csv"
        write_csv(ds, path)
        back = read_csv(path)
        assert len(back) == 2
        # ids become strings through CSV; geometry must survive exactly
        for tr, orig_id in zip(back, (1, 2)):
            orig = ds[orig_id]
            assert [p.as_tuple() for p in tr] == [p.as_tuple() for p in orig]

    def test_csv_without_header(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("7,0.0,0.0,0.0\n7,1.0,2.0,3.0\n")
        ds = read_csv(path)
        assert len(ds) == 1
        assert ds["7"].t_end == 3.0

    def test_csv_bad_column_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2,3\n")
        with pytest.raises(TrajectoryError):
            read_csv(path)

    def test_csv_bad_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,zero,0,0\n1,1,1,1\n")
        with pytest.raises(TrajectoryError):
            read_csv(path)

    def test_json_round_trip(self, tmp_path):
        ds = make_ds()
        path = tmp_path / "ds.json"
        write_json(ds, path)
        back = read_json(path)
        assert len(back) == 2
        assert back[1] == ds[1]
        assert back[2] == ds[2]

    def test_json_invalid_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TrajectoryError):
            read_json(path)

    def test_json_missing_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"stuff": []}')
        with pytest.raises(TrajectoryError):
            read_json(path)
