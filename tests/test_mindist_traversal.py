"""Tests for MINDIST(Q, N) and the best-first traversal.

MINDIST's contract (what Lemma 4 needs): for any segment stored under
a node and any instant in the common time window, the distance between
the query position and that segment's position is at least the node's
MINDIST.
"""

import random

import pytest

from repro import RTree3D, Trajectory, generate_gstd, mindist
from repro.datagen import make_query
from repro.geometry import MBR3D
from repro.index import best_first_nodes


class TestMindist:
    def test_none_without_temporal_overlap(self):
        q = Trajectory(0, [(0, 0, 0), (1, 1, 10)])
        box = MBR3D(0, 0, 20, 1, 1, 30)
        assert mindist(q, box, 0, 10) is None

    def test_zero_when_query_enters_box(self):
        q = Trajectory(0, [(0, 0, 0), (10, 0, 10)])
        box = MBR3D(4, -1, 0, 6, 1, 10)
        assert mindist(q, box, 0, 10) == 0.0

    def test_positive_clearance(self):
        q = Trajectory(0, [(0, 5, 0), (10, 5, 10)])
        box = MBR3D(0, 0, 0, 10, 1, 10)
        assert mindist(q, box, 0, 10) == pytest.approx(4.0)

    def test_period_clipping_changes_answer(self):
        # Query approaches the box only late; restricting the period
        # to the early part must give a larger MINDIST.
        q = Trajectory(0, [(0, 10, 0), (0, 2, 10)])
        box = MBR3D(-1, 0, 0, 1, 1, 10)
        full = mindist(q, box, 0, 10)
        early = mindist(q, box, 0, 2)
        assert full == pytest.approx(1.0)
        assert early > full

    def test_instantaneous_overlap(self):
        q = Trajectory(0, [(0, 0, 0), (10, 0, 10)])
        box = MBR3D(20, 0, 10, 30, 1, 15)  # touches q's lifetime at t=10
        d = mindist(q, box, 0, 10)
        assert d == pytest.approx(10.0)

    def test_lower_bounds_contained_segments(self, small_dataset, small_rtree):
        """For every leaf node: MINDIST(Q, N) <= distance from Q to any
        sampled position of any segment in N (over the time window)."""
        rng = random.Random(5)
        query, (t0, t1) = make_query(small_dataset, 0.2, rng)
        for node in small_rtree.nodes():
            if not node.is_leaf:
                continue
            d = mindist(query, node.mbr(), t0, t1)
            if d is None:
                continue
            for e in node.entries[:10]:
                lo = max(e.segment.ts, t0, query.t_start)
                hi = min(e.segment.te, t1, query.t_end)
                if lo > hi:
                    continue
                for i in range(5):
                    t = lo + (hi - lo) * i / 4.0
                    actual = query.position_at(t).distance_to(
                        e.segment.position_at(t)
                    )
                    assert d <= actual + 1e-7


class TestBestFirstTraversal:
    def test_nondecreasing_mindist_order(self, small_dataset, small_rtree):
        rng = random.Random(8)
        query, (t0, t1) = make_query(small_dataset, 0.3, rng)
        dists = [d for d, _n in best_first_nodes(small_rtree, query, t0, t1)]
        assert dists, "traversal yielded nothing"
        assert dists == sorted(dists)

    def test_visits_every_temporally_overlapping_leaf(
        self, small_dataset, small_rtree
    ):
        rng = random.Random(9)
        query, (t0, t1) = make_query(small_dataset, 0.2, rng)
        visited = {
            n.page_id for _d, n in best_first_nodes(small_rtree, query, t0, t1)
        }
        for node in small_rtree.nodes():
            if node.is_leaf and node.mbr().overlaps_period(t0, t1):
                assert node.page_id in visited

    def test_empty_index_yields_nothing(self):
        q = Trajectory(0, [(0, 0, 0), (1, 1, 1)])
        assert list(best_first_nodes(RTree3D(), q, 0, 1)) == []

    def test_consuming_lazily_reads_fewer_nodes(self, small_dataset, small_rtree):
        rng = random.Random(10)
        query, (t0, t1) = make_query(small_dataset, 0.2, rng)
        before = small_rtree.node_accesses
        gen = best_first_nodes(small_rtree, query, t0, t1)
        next(gen)
        first_cost = small_rtree.node_accesses - before
        assert first_cost == 1  # only the root was read
