"""Public API surface checks.

Guards against accidental breakage of the documented interface: every
name in ``repro.__all__`` resolves, the exception hierarchy roots at
``ReproError``, and the subpackage ``__all__`` lists are honest.
"""

import importlib
import inspect

import pytest

import repro
from repro.exceptions import (
    IndexError_,
    PageOverflowError,
    QueryError,
    ReproError,
    StorageError,
    TemporalCoverageError,
    TrajectoryError,
)

SUBPACKAGES = [
    "repro.geometry",
    "repro.trajectory",
    "repro.distance",
    "repro.storage",
    "repro.index",
    "repro.search",
    "repro.datagen",
    "repro.compression",
    "repro.experiments",
]


class TestTopLevelAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_lists_are_honest(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_public_functions_have_docstrings(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert undocumented == []


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            TrajectoryError,
            TemporalCoverageError,
            StorageError,
            PageOverflowError,
            IndexError_,
            QueryError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_page_overflow_is_a_storage_error(self):
        assert issubclass(PageOverflowError, StorageError)

    def test_index_error_does_not_shadow_builtin(self):
        assert IndexError_ is not IndexError
        assert not issubclass(IndexError_, IndexError)

    def test_one_except_catches_everything(self):
        """The documented catch-all pattern works."""
        from repro import Trajectory

        with pytest.raises(ReproError):
            Trajectory(1, [])
        with pytest.raises(ReproError):
            from repro.storage import InMemoryPageFile

            InMemoryPageFile(page_size=256).read(5)
