"""Structural and behavioural tests for the 3D R-tree and TB-tree.

Invariants checked:

* every parent entry's MBB contains its child's actual MBB,
* fanout never exceeds the page-derived capacity,
* every inserted segment is retrievable (by traversal and range query),
* range query agrees with brute force (property test),
* TB-tree leaves are single-trajectory and the leaf chain enumerates a
  trajectory's segments in temporal order,
* the indexes survive finalize (flush + buffer shrink) intact.
"""

import random

import pytest

from repro import MBR3D, RStarTree, RTree3D, STRTree, TBTree, Trajectory, generate_gstd
from repro.exceptions import IndexError_, TrajectoryError
from repro.index import NO_PAGE, LeafEntry
from repro.search import range_query_brute_force
from repro.geometry import MBR2D


def check_structure(index):
    """Assert the R-tree family invariants on every node."""
    seen_entries = 0
    for node in index.nodes():
        if node.chained:
            node.to_bytes(index.page_size)  # raises on page overflow
        else:
            assert len(node.entries) <= index.capacity
        if node.is_leaf:
            seen_entries += len(node.entries)
        else:
            for e in node.entries:
                child = index.read_node(e.child_page)
                assert child.level == node.level - 1
                assert e.mbr.contains(child.mbr()), (
                    f"parent {node.page_id} entry does not contain "
                    f"child {child.page_id}"
                )
    assert seen_entries == index.num_entries
    assert index.count_nodes() == index.num_nodes


_TREES = {
    "rtree": RTree3D,
    "rstar": RStarTree,
    "tbtree": TBTree,
    "strtree": STRTree,
}


@pytest.fixture(scope="module", params=["rtree", "rstar", "tbtree", "strtree"])
def built_index(request, small_dataset):
    cls = _TREES[request.param]
    index = cls()
    index.bulk_insert(small_dataset)
    index.finalize()
    return index


class TestCommonInvariants:
    def test_structure(self, built_index):
        check_structure(built_index)

    def test_all_segments_indexed(self, built_index, small_dataset):
        assert built_index.num_entries == small_dataset.total_segments()
        by_id = {}
        for e in built_index.leaf_entries():
            by_id.setdefault(e.trajectory_id, []).append(e)
        for tr in small_dataset:
            got = sorted(by_id[tr.object_id], key=lambda e: e.segment.ts)
            want = list(tr.segments())
            assert [e.segment for e in got] == want

    def test_max_speed_tracked(self, built_index, small_dataset):
        assert built_index.max_speed == pytest.approx(small_dataset.max_speed())

    def test_height_consistent(self, built_index):
        root = built_index.read_node(built_index.root_page)
        assert built_index.height == root.level + 1
        assert built_index.height >= 2  # 60 objects cannot fit one leaf

    def test_range_search_matches_brute_force(self, built_index, small_dataset):
        rng = random.Random(7)
        t0, t1 = small_dataset.time_span()
        for _ in range(10):
            cx, cy = rng.random(), rng.random()
            w = rng.uniform(0.05, 0.3)
            ta = rng.uniform(t0, t1 - 1.0)
            tb = ta + rng.uniform(0.0, (t1 - ta) / 2)
            box = MBR3D(cx - w, cy - w, ta, cx + w, cy + w, tb)
            got = {e.trajectory_id for e in built_index.range_search(box)}
            want = set()
            for tr in small_dataset:
                for seg in tr.segments():
                    if seg.mbr().intersects(box):
                        want.add(tr.object_id)
                        break
            assert got == want

    def test_non_integer_id_rejected(self, built_index):
        with pytest.raises(TrajectoryError):
            built_index.__class__().insert(
                Trajectory("str-id", [(0, 0, 0), (1, 1, 1)])
            )

    def test_duplicate_trajectory_rejected(self):
        ds = generate_gstd(3, samples_per_object=10, seed=1)
        index = RTree3D()
        index.bulk_insert(ds)
        with pytest.raises(TrajectoryError):
            index.insert(ds[0])

    def test_insert_after_finalize_rejected(self, built_index):
        with pytest.raises(IndexError_):
            built_index.insert(Trajectory(999_999, [(0, 0, 0), (1, 1, 1)]))

    def test_finalize_shrinks_buffer(self, small_dataset):
        index = RTree3D()
        index.bulk_insert(small_dataset)
        index.finalize()
        assert index.buffer.capacity <= 1000
        # queries still work through the small buffer
        check_structure(index)

    def test_size_mb_positive(self, built_index):
        assert built_index.size_mb() > 0.0

    def test_empty_index_behaviour(self):
        index = RTree3D()
        assert index.height == 0
        assert index.root_page == NO_PAGE
        assert list(index.nodes()) == []
        assert index.range_search(MBR3D(0, 0, 0, 1, 1, 1)) == []
        with pytest.raises(IndexError_):
            index.mbr()


class TestRangeQueryExactness:
    def test_exact_range_query_agrees_with_brute_force(
        self, built_index, small_dataset
    ):
        from repro.search.range_query import range_query

        rng = random.Random(3)
        t0, t1 = small_dataset.time_span()
        for _ in range(8):
            cx, cy = rng.random(), rng.random()
            w = rng.uniform(0.05, 0.25)
            ta = rng.uniform(t0, t1 - 1.0)
            tb = ta + rng.uniform(1.0, (t1 - ta))
            window = MBR2D(cx - w, cy - w, cx + w, cy + w)
            got = range_query(built_index, window, ta, tb)
            want = range_query_brute_force(small_dataset, window, ta, tb)
            assert got == want


class TestRTreeSpecific:
    def test_incremental_insert_matches_bulk_content(self, tiny_dataset):
        a = RTree3D()
        for tr in tiny_dataset:
            a.insert(tr)
        check_structure(a)
        assert a.num_entries == tiny_dataset.total_segments()

    def test_str_bulk_load(self, tiny_dataset):
        entries = [
            LeafEntry(tr.object_id, seg)
            for tr in tiny_dataset
            for seg in tr.segments()
        ]
        index = RTree3D()
        index.bulk_load(entries)
        check_structure(index)
        assert index.num_entries == len(entries)
        assert index.max_speed == pytest.approx(tiny_dataset.max_speed())

    def test_bulk_load_requires_empty_tree(self, tiny_dataset):
        index = RTree3D()
        index.insert(next(iter(tiny_dataset)))
        with pytest.raises(IndexError_):
            index.bulk_load([])

    def test_bulk_load_empty_list_noop(self):
        index = RTree3D()
        index.bulk_load([])
        assert index.root_page == NO_PAGE

    def test_bulk_load_is_denser_than_insertion(self, small_dataset):
        inserted = RTree3D()
        inserted.bulk_insert(small_dataset)
        packed = RTree3D()
        packed.bulk_load(
            [
                LeafEntry(tr.object_id, seg)
                for tr in small_dataset
                for seg in tr.segments()
            ]
        )
        assert packed.num_nodes <= inserted.num_nodes


class TestRStarTreeSpecific:
    def test_forced_reinsertion_fires(self, small_dataset):
        index = RStarTree()
        index.bulk_insert(small_dataset)
        assert index.reinsertions > 0
        check_structure(index)

    def test_structure_with_tiny_pages(self, tiny_dataset):
        """Deep trees with fanout 8 exercise internal reinsertion and
        the R* split path hard."""
        index = RStarTree(page_size=512)
        index.bulk_insert(tiny_dataset)
        check_structure(index)

    def test_interleaved_insertion_order(self):
        """Segment-at-a-time interleaved arrival (the worst case for
        reinsertion bookkeeping)."""
        import itertools

        trajs = [
            Trajectory(i, [(i + 0.01 * j, 0.5 * i, float(j)) for j in range(15)])
            for i in range(6)
        ]
        index = RStarTree(page_size=512)
        index.trajectory_ids.update(range(6))
        segs = [[(tr.object_id, s) for s in tr.segments()] for tr in trajs]
        for batch in itertools.zip_longest(*segs):
            for item in batch:
                if item is not None:
                    index.insert_entry(LeafEntry(*item))
        check_structure(index)
        assert index.num_entries == sum(tr.num_segments for tr in trajs)


class TestSTRTreeSpecific:
    def test_preservation_engages(self, small_dataset):
        index = STRTree()
        index.bulk_insert(small_dataset)
        # Inserting trajectory-by-trajectory, the vast majority of
        # segments should land next to their predecessor.
        assert index.preservation_ratio() > 0.5
        check_structure(index)

    def test_reserve_zero_means_full_preservation_room(self, tiny_dataset):
        index = STRTree(reserve=0)
        index.bulk_insert(tiny_dataset)
        check_structure(index)

    def test_invalid_reserve_rejected(self):
        with pytest.raises(IndexError_):
            STRTree(reserve=-1)
        with pytest.raises(IndexError_):
            STRTree(page_size=512, reserve=8)  # capacity is 8 there

    def test_default_reserve_adapts_to_page_size(self):
        assert STRTree(page_size=512).reserve < STRTree().reserve + 1

    def test_preservation_improves_trajectory_clustering(self, small_dataset):
        """Compared to the plain R-tree, a trajectory's segments should
        spread over fewer leaves."""

        def leaves_per_trajectory(index):
            spread: dict[int, set[int]] = {}
            for node in index.nodes():
                if node.is_leaf:
                    for e in node.entries:
                        spread.setdefault(e.trajectory_id, set()).add(
                            node.page_id
                        )
            return sum(len(s) for s in spread.values()) / len(spread)

        plain = RTree3D()
        plain.bulk_insert(small_dataset)
        preserved = STRTree()
        preserved.bulk_insert(small_dataset)
        assert leaves_per_trajectory(preserved) <= leaves_per_trajectory(plain)

    def test_bulk_load_then_insert(self, tiny_dataset):
        trajectories = list(tiny_dataset)
        entries = [
            LeafEntry(tr.object_id, seg)
            for tr in trajectories[:-1]
            for seg in tr.segments()
        ]
        index = STRTree()
        index.bulk_load(entries)
        index.trajectory_ids.discard(trajectories[-1].object_id)
        index.insert(trajectories[-1])
        check_structure(index)
        assert index.num_entries == tiny_dataset.total_segments()


class TestTBTreeSpecific:
    def test_leaves_are_single_trajectory(self, small_dataset):
        index = TBTree()
        index.bulk_insert(small_dataset)
        for node in index.nodes():
            if node.is_leaf:
                owners = {e.trajectory_id for e in node.entries}
                assert len(owners) == 1
                assert node.owner_id in owners

    def test_leaf_chain_enumerates_in_order(self, small_dataset):
        index = TBTree()
        index.bulk_insert(small_dataset)
        for tr in small_dataset:
            segs = index.trajectory_segments(tr.object_id)
            assert [e.segment for e in segs] == list(tr.segments())

    def test_leaf_chain_links_are_mutual(self, small_dataset):
        index = TBTree()
        index.bulk_insert(small_dataset)
        for tr in small_dataset:
            chain = index.leaf_chain(tr.object_id)
            for prev, cur in zip(chain, chain[1:]):
                assert prev.next_leaf == cur.page_id
                assert cur.prev_leaf == prev.page_id

    def test_unknown_trajectory_chain_empty(self):
        index = TBTree()
        assert index.leaf_chain(12345) == []
        assert index.trajectory_segments(12345) == []

    def test_out_of_order_insertion_rejected(self):
        index = TBTree()
        tr = Trajectory(1, [(0, 0, 0), (1, 1, 1), (2, 2, 2)])
        index.insert(tr)
        from repro.geometry import STPoint, STSegment

        stale = LeafEntry(1, STSegment(STPoint(0, 0, 0.2), STPoint(1, 1, 0.7)))
        with pytest.raises(IndexError_):
            index.insert_entry(stale)

    def test_interleaved_trajectory_insertion(self):
        """Segments of different objects arriving interleaved (the
        online MOD setting) still produce pure, ordered leaves."""
        a = Trajectory(1, [(float(i), 0.0, float(i)) for i in range(40)])
        b = Trajectory(2, [(0.0, float(i), float(i)) for i in range(40)])
        index = TBTree(page_size=512)  # small pages -> several leaves
        segs_a = [LeafEntry(1, s) for s in a.segments()]
        segs_b = [LeafEntry(2, s) for s in b.segments()]
        index.trajectory_ids.update([1, 2])
        for ea, eb in zip(segs_a, segs_b):
            index.insert_entry(ea)
            index.insert_entry(eb)
        index.num_entries = len(segs_a) + len(segs_b)
        assert [e.segment for e in index.trajectory_segments(1)] == [
            e.segment for e in segs_a
        ]
        assert [e.segment for e in index.trajectory_segments(2)] == [
            e.segment for e in segs_b
        ]
        for node in index.nodes():
            if node.is_leaf:
                assert len({e.trajectory_id for e in node.entries}) == 1
