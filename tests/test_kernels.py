"""The vectorised kernel layer: columnar trajectory views, batched
segment-DISSIM / MINDIST kernels, and end-to-end kernel-dispatch parity
(numpy vs pure Python) of the BFMST search on both trees and through
the sharded engine path."""

import builtins

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    RTree3D,
    TBTree,
    Trajectory,
    TrajectoryDataset,
    generate_gstd,
    make_workload,
)
from repro.distance import fast, kernels
from repro.distance.dissim import segment_dissim
from repro.distance.kernels import (
    make_segment_dissim_batch,
    resolve_kernels,
    segment_dissim_batch,
    segment_dissim_batch_python,
)
from repro.distance.trinomial import DistanceTrinomial
from repro.engine import EngineConfig, QueryEngine, QueryRequest
from repro.exceptions import QueryError, TemporalCoverageError
from repro.geometry import MBR3D, STSegment, distance_trinomial_coefficients
from repro.index.mindist import (
    make_mindist_batch,
    mindist,
    mindist_batch,
    mindist_batch_python,
)
from repro.obs import query_trace
from repro.search import api as search_api
from repro.search.bfmst import bfmst_search
from repro.sharding import (
    PARTITIONER_KINDS,
    ShardedDataset,
    build_sharded_index,
    make_partitioner,
)
from repro.trajectory import columns as columns_mod
from repro.trajectory import dataset_columns

coord = st.floats(min_value=-50.0, max_value=50.0)


# ----------------------------------------------------------------------
# shared worlds
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def gstd_world():
    dataset = generate_gstd(30, samples_per_object=25, seed=11)
    (query, period), = make_workload(dataset, 1, 0.15, seed=11)
    return dataset, query, period


def build_tree(tree_cls, dataset):
    index = tree_cls(page_size=512)
    index.bulk_insert(dataset)
    index.finalize()
    return index


def iter_nodes(index):
    stack = [index.root_page]
    while stack:
        node = index.read_node(stack.pop())
        yield node
        if not node.is_leaf:
            stack.extend(e.child_page for e in node.entries)


def window_items(dataset, query, period):
    """The (segment, lo, hi) leaf windows a BFMST over ``dataset``
    would integrate — every data segment clipped to the query period
    and the query lifetime."""
    items = []
    for tr in dataset:
        for seg in tr.segments_overlapping(period[0], period[1]):
            lo = max(seg.ts, period[0], query.t_start)
            hi = min(seg.te, period[1], query.t_end)
            if lo < hi and query.covers(lo, hi):
                items.append((seg, lo, hi))
    return items


@st.composite
def trajectories(draw, oid=0):
    n = draw(st.integers(min_value=2, max_value=8))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    return Trajectory(oid, [(draw(coord), draw(coord), t) for t in times])


@st.composite
def worlds(draw):
    """A small dataset plus a query slice, as in test_bfmst_property."""
    total = draw(st.floats(min_value=2.0, max_value=40.0))
    n_objects = draw(st.integers(min_value=3, max_value=6))
    dataset = TrajectoryDataset()
    for oid in range(n_objects):
        n = draw(st.integers(min_value=2, max_value=6))
        interior = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.05, max_value=0.95),
                    min_size=n - 2,
                    max_size=n - 2,
                    unique=True,
                )
            )
        )
        times = sorted({0.0, *[f * total for f in interior], total})
        dataset.add(
            Trajectory(oid, [(draw(coord), draw(coord), t) for t in times])
        )
    f_lo = draw(st.floats(min_value=0.0, max_value=0.6))
    f_len = draw(st.floats(min_value=0.2, max_value=0.39))
    period = (f_lo * total, (f_lo + f_len) * total)
    source = dataset[draw(st.integers(min_value=0, max_value=n_objects - 1))]
    query = source.sliced(*period).with_id(-1)
    return dataset, query, period


# ----------------------------------------------------------------------
# columnar view
# ----------------------------------------------------------------------
class TestColumnarView:
    @given(trajectories())
    @settings(max_examples=60, deadline=None)
    def test_columns_round_trip_samples_exactly(self, traj):
        cols = traj.columns()
        assert list(cols.t) == [p.t for p in traj.samples]
        assert list(cols.x) == [p.x for p in traj.samples]
        assert list(cols.y) == [p.y for p in traj.samples]
        # memoised: the view is built once per trajectory
        assert traj.columns() is cols

    @given(trajectories())
    @settings(max_examples=30, deadline=None)
    def test_numpy_views_are_zero_copy_and_read_only(self, traj):
        np = pytest.importorskip("numpy")
        cols = traj.columns()
        t = cols.t_view()
        assert t.dtype == np.float64
        assert not t.flags.writeable
        assert cols.t_view() is t  # memoised
        assert t.tolist() == [p.t for p in traj.samples]
        xy = cols.xy()
        assert xy.shape == (len(traj.samples), 2)
        assert not xy.flags.writeable
        assert cols.xy() is xy
        assert xy[:, 0].tolist() == [p.x for p in traj.samples]
        assert xy[:, 1].tolist() == [p.y for p in traj.samples]

    def test_dataset_columns_cached_until_dataset_changes(self):
        dataset = TrajectoryDataset()
        dataset.add(Trajectory(1, [(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]))
        dataset.add(Trajectory(2, [(2.0, 0.0, 0.0), (1.0, 3.0, 2.0)]))
        first = dataset_columns(dataset)
        assert set(first) == {1, 2}
        assert first[1] is dataset.get(1).columns()
        # same signature -> the cached mapping is returned as-is
        assert dataset_columns(dataset) is first
        # structural change -> new signature -> fresh mapping
        dataset.add(Trajectory(3, [(0.0, 0.0, 0.0), (5.0, 5.0, 5.0)]))
        second = dataset_columns(dataset)
        assert second is not first
        assert set(second) == {1, 2, 3}

    def test_coords_served_from_columns(self):
        pytest.importorskip("numpy")
        traj = Trajectory(7, [(0.0, 1.0, 0.0), (2.0, 3.0, 1.0)])
        arr = fast.coords(traj)
        assert arr is traj.columns().xy()
        assert fast.coords(traj) is arr


# ----------------------------------------------------------------------
# batched segment DISSIM
# ----------------------------------------------------------------------
class TestSegmentDissimBatch:
    def test_matches_scalar_on_gstd(self, gstd_world):
        pytest.importorskip("numpy")
        dataset, query, period = gstd_world
        items = window_items(dataset, query, period)
        assert len(items) > 100
        got = segment_dissim_batch(query, items)
        for (seg, lo, hi), (integral, d0, d1) in zip(items, got):
            w_integral, w_d0, w_d1 = segment_dissim(query, seg, lo, hi)
            assert integral.approx == w_integral.approx
            assert integral.error_bound == w_integral.error_bound
            assert d0 == w_d0
            assert d1 == w_d1

    @given(worlds())
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_numpy_equals_python_batch_on_arbitrary_worlds(self, world):
        pytest.importorskip("numpy")
        dataset, query, period = world
        items = window_items(dataset, query, period)
        if not items:
            return
        got = segment_dissim_batch(query, items)
        want = segment_dissim_batch_python(query, items)
        for (g_int, g0, g1), (w_int, w0, w1) in zip(got, want):
            rel = 1e-9 * max(1.0, abs(w_int.approx))
            assert abs(g_int.approx - w_int.approx) <= rel
            assert abs(g_int.error_bound - w_int.error_bound) <= rel
            assert g0 == pytest.approx(w0, rel=1e-9, abs=1e-12)
            assert g1 == pytest.approx(w1, rel=1e-9, abs=1e-12)

    @given(
        qx0=coord, qy0=coord, qx1=coord, qy1=coord,
        sx0=coord, sy0=coord, sx1=coord, sy1=coord,
        lo=st.floats(min_value=1.0, max_value=4.0),
        hi=st.floats(min_value=5.0, max_value=9.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_single_piece_equals_trinomial_coefficients(
        self, qx0, qy0, qx1, qy1, sx0, sy0, sx1, sy1, lo, hi
    ):
        """One window inside one query segment: the batched result is
        exactly the trapezoid integral of
        :func:`distance_trinomial_coefficients` over the clipped pair."""
        pytest.importorskip("numpy")
        query = Trajectory(-1, [(qx0, qy0, 0.0), (qx1, qy1, 10.0)])
        seg = Trajectory(1, [(sx0, sy0, 0.5), (sx1, sy1, 9.5)]).segment_covering(5.0)
        q_seg = query.segment_covering((lo + hi) / 2.0)
        a, b, c, t_lo, t_hi = distance_trinomial_coefficients(
            q_seg.clipped(lo, hi), seg.clipped(lo, hi)
        )
        assert (t_lo, t_hi) == (lo, hi)
        want = DistanceTrinomial(a, b, c).trapezoid_integral(0.0, hi - lo)
        ((integral, _d0, _d1),) = segment_dissim_batch(query, [(seg, lo, hi)])
        assert integral.approx == pytest.approx(want.approx, rel=1e-9, abs=1e-12)
        assert integral.error_bound == pytest.approx(
            want.error_bound, rel=1e-9, abs=1e-12
        )

    def test_rejects_bad_windows_like_scalar(self, gstd_world):
        pytest.importorskip("numpy")
        _dataset, query, _period = gstd_world
        seg = query.segment_covering(query.t_start)
        with pytest.raises(QueryError):
            segment_dissim_batch(query, [(seg, seg.ts - 1.0, seg.te)])
        outside = Trajectory(
            9, [(0.0, 0.0, query.t_end + 1.0), (1.0, 1.0, query.t_end + 2.0)]
        ).segment_covering(query.t_end + 1.5)
        with pytest.raises(TemporalCoverageError):
            segment_dissim_batch(query, [(outside, outside.ts, outside.te)])


# ----------------------------------------------------------------------
# batched MINDIST
# ----------------------------------------------------------------------
class TestMindistBatch:
    @pytest.mark.parametrize(
        "tree_cls", (RTree3D, TBTree), ids=lambda c: c.__name__
    )
    def test_matches_scalar_on_every_tree_node(self, tree_cls, gstd_world):
        pytest.importorskip("numpy")
        dataset, query, period = gstd_world
        index = build_tree(tree_cls, dataset)
        checked = 0
        for node in iter_nodes(index):
            boxes = [e.mbr for e in node.entries]
            if not boxes:
                continue
            got = mindist_batch(query, boxes, *period)
            want = mindist_batch_python(query, boxes, *period)
            assert got == want
            checked += len(boxes)
        assert checked > 50

    @given(
        data=st.data(),
        traj=trajectories(oid=-1),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_matches_scalar_on_random_boxes(self, data, traj):
        pytest.importorskip("numpy")
        n = data.draw(st.integers(min_value=1, max_value=8))
        boxes = []
        tspan = st.floats(
            min_value=traj.t_start - 5.0, max_value=traj.t_end + 5.0
        )
        for _ in range(n):
            x1, x2 = sorted((data.draw(coord), data.draw(coord)))
            y1, y2 = sorted((data.draw(coord), data.draw(coord)))
            t1, t2 = sorted((data.draw(tspan), data.draw(tspan)))
            boxes.append(MBR3D(x1, y1, t1, x2, y2, t2))
        period = (traj.t_start, traj.t_end)
        got = mindist_batch(traj, boxes, *period)
        want = [mindist(traj, box, *period) for box in boxes]
        for g, w in zip(got, want):
            if w is None:
                assert g is None
            else:
                assert g == pytest.approx(w, rel=1e-9, abs=1e-12)

    def test_instant_window_and_disjoint_boxes(self):
        pytest.importorskip("numpy")
        traj = Trajectory(-1, [(0.0, 0.0, 0.0), (10.0, 0.0, 10.0)])
        instant = MBR3D(2.0, 1.0, 5.0, 3.0, 2.0, 5.0)  # tmin == tmax
        disjoint = MBR3D(0.0, 0.0, 20.0, 1.0, 1.0, 30.0)  # after lifetime
        got = mindist_batch(traj, [instant, disjoint], 0.0, 10.0)
        assert got[0] == mindist(traj, instant, 0.0, 10.0)
        assert got[1] is None


# ----------------------------------------------------------------------
# BFMST parity: kernels="python" vs kernels="numpy"
# ----------------------------------------------------------------------
def assert_same_answers(got, want):
    assert [m.trajectory_id for m in got] == [m.trajectory_id for m in want]
    for g, w in zip(got, want):
        assert g.dissim == pytest.approx(w.dissim, rel=1e-9, abs=1e-12)
        assert g.error_bound == pytest.approx(
            w.error_bound, rel=1e-9, abs=1e-12
        )
        assert g.exact == w.exact


class TestBFMSTKernelParity:
    @pytest.mark.parametrize(
        "tree_cls", (RTree3D, TBTree), ids=lambda c: c.__name__
    )
    def test_single_tree_identical_rankings(self, tree_cls, gstd_world):
        pytest.importorskip("numpy")
        dataset, query, period = gstd_world
        index = build_tree(tree_cls, dataset)
        for k in (1, 5, 10):
            scalar, s_stats = bfmst_search(
                index, query, period, k, kernels="python"
            )
            vector, v_stats = bfmst_search(
                index, query, period, k, kernels="numpy"
            )
            classic, _ = bfmst_search(index, query, period, k)
            assert_same_answers(vector, scalar)
            assert_same_answers(vector, classic)
            assert v_stats.candidates_rejected == s_stats.candidates_rejected
            assert v_stats.node_accesses == s_stats.node_accesses

    @pytest.mark.parametrize("partitioner_kind", PARTITIONER_KINDS)
    def test_sharded_identical_rankings(self, partitioner_kind, gstd_world):
        pytest.importorskip("numpy")
        dataset, query, period = gstd_world
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner(partitioner_kind, 3)
        )
        sharded = build_sharded_index(sharded_ds, RTree3D, page_size=512)
        try:
            scalar = search_api.bfmst_search(
                sharded, None, query, period=period, k=5, kernels="python"
            )
            vector = search_api.bfmst_search(
                sharded, None, query, period=period, k=5, kernels="numpy"
            )
            assert_same_answers(vector.matches, scalar.matches)
        finally:
            sharded.close()

    @given(worlds())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_parity_on_arbitrary_worlds(self, world):
        pytest.importorskip("numpy")
        dataset, query, period = world
        for tree_cls in (RTree3D, TBTree):
            index = build_tree(tree_cls, dataset)
            scalar, _ = bfmst_search(index, query, period, 3, kernels="python")
            vector, _ = bfmst_search(index, query, period, 3, kernels="numpy")
            assert_same_answers(vector, scalar)

    def test_engine_dispatch_and_batch_caches(self, gstd_world):
        pytest.importorskip("numpy")
        dataset, query, period = gstd_world
        answers = {}
        for mode in ("numpy", "python", None):
            index = build_tree(RTree3D, dataset)
            with QueryEngine(
                index, dataset, config=EngineConfig(kernels=mode)
            ) as engine:
                request = QueryRequest("mst", query, period, k=5)
                first = engine.execute(request)
                # the second run must be answered from the batch-aware
                # per-query memos, not recomputed
                second = engine.execute(request)
                assert [m.trajectory_id for m in first.matches] == [
                    m.trajectory_id for m in second.matches
                ]
                if mode is not None:
                    assert engine.mindist_cache.hits > 0
                    assert engine.segdissim_cache.hits > 0
                answers[mode] = first.matches
        assert_same_answers(answers["numpy"], answers["python"])
        assert_same_answers(answers["numpy"], answers[None])


# ----------------------------------------------------------------------
# observability counters
# ----------------------------------------------------------------------
class TestKernelCounters:
    def test_numpy_path_reports_kernel_usage(self, gstd_world):
        pytest.importorskip("numpy")
        dataset, query, period = gstd_world
        index = build_tree(RTree3D, dataset)
        with query_trace(index, name="kernels-numpy") as trace:
            _matches, stats = bfmst_search(
                index, query, period, 5, kernels="numpy"
            )
        assert stats.kernel_batches > 0
        assert stats.kernel_segments > 0
        assert stats.mindist_batched > 0
        doc = stats.as_dict()
        assert doc["kernel_batches"] == stats.kernel_batches
        assert trace.registry.value("distance.kernel_batches") > 0
        assert trace.registry.value("index.mindist_batched") > 0

    def test_scalar_paths_report_zero(self, gstd_world):
        dataset, query, period = gstd_world
        index = build_tree(RTree3D, dataset)
        for mode in ("python", None):
            with query_trace(index, name=f"kernels-{mode}"):
                _matches, stats = bfmst_search(
                    index, query, period, 5, kernels=mode
                )
            assert stats.kernel_batches == 0
            assert stats.kernel_segments == 0
            assert stats.mindist_batched == 0


# ----------------------------------------------------------------------
# numpy-less fallback
# ----------------------------------------------------------------------
@pytest.fixture()
def no_numpy(monkeypatch):
    """Make ``import numpy`` fail and clear every module's memo."""
    real_import = builtins.__import__

    def blocked(name, *args, **kwargs):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy is not installed (simulated)")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(fast, "_np", None)
    monkeypatch.setattr(kernels, "_np", None)
    monkeypatch.setattr(columns_mod, "_np", None)
    monkeypatch.setattr(builtins, "__import__", blocked)
    yield
    fast._np = None
    kernels._np = None
    columns_mod._np = None


class TestPythonFallback:
    def test_resolution_without_numpy(self, no_numpy):
        assert not kernels.have_numpy()
        assert resolve_kernels("auto") == "python"
        assert resolve_kernels("python") == "python"
        with pytest.raises(ImportError, match="optional extra"):
            resolve_kernels("numpy")
        assert make_segment_dissim_batch("auto") is segment_dissim_batch_python
        assert make_mindist_batch("auto") is mindist_batch_python

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown kernels mode"):
            resolve_kernels("fortran")

    def test_columns_build_without_numpy_views_raise(self, no_numpy):
        traj = Trajectory(1, [(0.0, 1.0, 0.0), (2.0, 3.0, 1.0)])
        cols = traj.columns()
        assert list(cols.t) == [0.0, 1.0]
        with pytest.raises(ImportError, match="optional"):
            cols.t_view()

    def test_bfmst_auto_matches_classic_without_numpy(self, no_numpy):
        dataset = generate_gstd(8, samples_per_object=10, seed=3)
        (query, period), = make_workload(dataset, 1, 0.2, seed=3)
        index = build_tree(RTree3D, dataset)
        classic, _ = bfmst_search(index, query, period, 3)
        auto, stats = bfmst_search(index, query, period, 3, kernels="auto")
        assert [m.trajectory_id for m in auto] == [
            m.trajectory_id for m in classic
        ]
        for g, w in zip(auto, classic):
            assert g.dissim == w.dissim
        assert stats.kernel_batches == 0  # python path counts nothing
