"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def small_csv(tmp_path):
    path = tmp_path / "ds.csv"
    rc = main(
        [
            "generate",
            str(path),
            "--kind",
            "gstd",
            "--objects",
            "12",
            "--samples",
            "30",
            "--seed",
            "3",
        ]
    )
    assert rc == 0
    return path


class TestGenerate:
    def test_generate_csv(self, small_csv, capsys):
        assert small_csv.exists()

    def test_generate_json_trucks(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        rc = main(
            ["generate", str(path), "--kind", "trucks", "--objects", "5",
             "--samples", "20"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "5 trajectories" in out


class TestBuildInfoQuery:
    def test_full_pipeline(self, small_csv, tmp_path, capsys):
        index_path = tmp_path / "idx.pages"
        rc = main(
            ["build", str(small_csv), str(index_path), "--tree", "tbtree"]
        )
        assert rc == 0
        assert index_path.exists()
        out = capsys.readouterr().out
        assert "built tbtree" in out

        rc = main(["info", str(index_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TBTree" in out
        assert "entries:     348" in out  # 12 * 29

        rc = main(
            ["query", str(index_path), str(small_csv), "--object", "3",
             "--window", "0.2", "--k", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "object 3" in out  # the source is its own best match
        assert "pruning power" in out

    def test_query_unknown_object(self, small_csv, tmp_path, capsys):
        index_path = tmp_path / "idx.pages"
        main(["build", str(small_csv), str(index_path)])
        capsys.readouterr()
        rc = main(
            ["query", str(index_path), str(small_csv), "--object", "999"]
        )
        assert rc == 2

    def test_build_missing_dataset(self, tmp_path):
        rc = main(["build", str(tmp_path / "nope.csv"), str(tmp_path / "i")])
        assert rc == 1

    def test_info_missing_index(self, tmp_path):
        rc = main(["info", str(tmp_path / "nope.pages")])
        assert rc == 1


class TestExperimentCommand:
    def test_q2_smoke(self, capsys):
        rc = main(
            ["experiment", "q2", "--scale", "0.15", "--queries", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 10 Q2" in out

    def test_q3_smoke(self, capsys):
        rc = main(
            ["experiment", "q3", "--scale", "0.15", "--queries", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 10 Q3" in out

    def test_quality_smoke(self, capsys):
        rc = main(
            ["experiment", "quality", "--trucks", "6", "--queries", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "DISSIM" in out


class TestShard:
    def test_build_inspect_query_stats(self, small_csv, tmp_path, capsys):
        directory = tmp_path / "shards"
        rc = main(
            ["shard", "build", str(small_csv), str(directory),
             "--shards", "3", "--partitioner", "hash",
             "--page-size", "1024"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "3x rtree" in out
        assert (directory / "manifest.json").exists()

        rc = main(["shard", "inspect", str(directory)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 shards" in out
        assert "shard 2:" in out

        rc = main(
            ["shard", "query", str(directory), str(small_csv),
             "--k", "3", "--seed", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "DISSIM=" in out
        assert "shards searched" in out

        rc = main(
            ["shard", "query", str(directory), str(small_csv),
             "--k", "3", "--seed", "2", "--executor", "thread",
             "--workers", "2"]
        )
        assert rc == 0

        out_path = tmp_path / "trace.json"
        rc = main(
            ["stats", str(directory), str(small_csv), "--k", "3",
             "--seed", "2", "--per-shard", "--output", str(out_path)]
        )
        assert rc == 0
        import json

        doc = json.loads(out_path.read_text())
        assert len(doc["per_shard"]) == 3
        assert doc["shards_searched"] + doc["shards_pruned"] == 3

    def test_query_missing_directory(self, small_csv, tmp_path):
        rc = main(
            ["shard", "query", str(tmp_path / "nope"), str(small_csv)]
        )
        assert rc == 1


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
