"""Compression vs retrieval quality — the Figure 8/9 story end to end.

A position logger compresses trajectories with TD-TR before upload to
save bandwidth.  How aggressively can it compress before similarity
search stops finding the right original?  We compress every trajectory
at several TD-TR settings, query the database with each compressed
copy, and report how often each similarity measure still identifies
the original — DISSIM stays accurate far beyond where EDR collapses.

Run:  python examples/compression_quality.py
"""

from repro import generate_trucks, td_tr_fraction
from repro.experiments import compression_profile, print_table, quality_experiment


def main() -> None:
    dataset = generate_trucks(25, samples_per_truck=120, seed=23)
    print(
        f"fleet: {len(dataset)} trajectories, "
        f"{dataset.total_samples()} samples\n"
    )

    # Figure 8: how many vertices survive at each compression level?
    sample = dataset[3]
    rows = [
        (f"{p * 100:g} %", vertices, f"{vertices / len(sample):.0%}")
        for p, vertices in compression_profile(
            sample, p_values=(0.0, 0.001, 0.01, 0.02, 0.1)
        )
    ]
    print_table(
        ["TD-TR p", "vertices", "kept"],
        rows,
        title="Figure 8: compression of one trajectory",
    )

    # How different do the compressed copies actually get?
    from repro import dissim_exact

    for p in (0.001, 0.02, 0.1):
        compressed = td_tr_fraction(sample, p).with_id("c")
        d = dissim_exact(compressed, sample)
        print(f"  DISSIM(original, p={p * 100:g}% copy) = {d:.3f}")
    print()

    # Figure 9: retrieval quality per measure.
    points = quality_experiment(
        dataset,
        p_values=(0.01, 0.05, 0.10),
        measures=("DISSIM", "LCSS", "LCSS-I", "EDR", "EDR-I"),
        max_queries=15,
        seed=9,
    )
    measures = ["DISSIM", "LCSS", "LCSS-I", "EDR", "EDR-I"]
    ps = sorted({pt.p for pt in points})
    by = {(pt.measure, pt.p): pt for pt in points}
    rows = [
        [m] + [f"{by[(m, p)].failure_rate:.0%}" for p in ps] for m in measures
    ]
    print_table(
        ["measure"] + [f"p={p * 100:g}%" for p in ps],
        rows,
        title="Figure 9: false 1-MST results under compression",
    )
    print(
        "Reading: 0% means the measure always re-identified the "
        "original trajectory from its compressed copy."
    )


if __name__ == "__main__":
    main()
