"""Quickstart: build an index, run a k-MST query, inspect the stats.

Also reproduces the paper's Figure 1 motivating example: two
trajectories following the same route with very different sampling
rates (4 vs 32 samples) are near-identical under DISSIM while LCSS and
EDR consider them dissimilar.

Run:  python examples/quickstart.py
"""

from repro import (
    RTree3D,
    Trajectory,
    bfmst_search,
    dissim_exact,
    edr_distance,
    generate_gstd,
    lcss_distance,
    make_workload,
)


def figure1_example() -> None:
    print("=== Figure 1: different sampling rates ===")
    # One route, sampled 32 times (T) and 4 times (Q).
    dense = Trajectory(
        "T", [(i * 1.0, 0.3 * i, float(i)) for i in range(32)]
    )
    sparse = dense.uniformly_resampled(4).with_id("Q")
    print(f"T has {len(dense)} samples, Q has {len(sparse)} samples")
    print(f"  DISSIM(Q, T) = {dissim_exact(sparse, dense):.6f}  (0 = identical)")
    print(f"  LCSS distance = {lcss_distance(sparse, dense, eps=0.25):.3f}  (0 = identical)")
    print(f"  EDR distance  = {edr_distance(sparse, dense, eps=0.25)} edit ops")
    print("DISSIM recognises the match; the sequence-alignment measures do not.\n")


def kmst_search_example() -> None:
    print("=== k-MST search on a 3D R-tree ===")
    dataset = generate_gstd(100, samples_per_object=80, seed=7)
    print(
        f"dataset: {len(dataset)} objects, "
        f"{dataset.total_segments()} line segments"
    )

    index = RTree3D()  # 4 KB pages, as in the paper
    index.bulk_insert(dataset)
    index.finalize()  # flush + shrink buffer to the 10 % policy
    print(
        f"index: {index.num_nodes} nodes, height {index.height}, "
        f"{index.size_mb():.2f} MB"
    )

    # A Table 3-style query: 10 % of a random trajectory's lifetime.
    ((query, period),) = make_workload(dataset, 1, query_length=0.10, seed=3)
    result = bfmst_search(index, None, query, period=period, k=5)
    matches, stats = result.matches, result.stats

    print(f"query period: [{period[0]:.1f}, {period[1]:.1f}]")
    print("top-5 most similar trajectories:")
    for rank, m in enumerate(matches, start=1):
        print(f"  {rank}. object {m.trajectory_id:4d}  DISSIM = {m.dissim:.6f}")
    print(
        f"stats: {stats.node_accesses}/{stats.total_nodes} nodes accessed, "
        f"pruning power {stats.pruning_power:.1%}, "
        f"{stats.entries_processed} leaf entries integrated"
    )


if __name__ == "__main__":
    figure1_example()
    kmst_search_example()
