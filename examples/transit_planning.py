"""Transit planning — the paper's introduction scenario.

A city extends its metro network with a new line.  Planners want to
find the existing bus routes whose vehicle trajectories are most
similar (spatiotemporally!) to the new metro line's timetable run: a
bus that shadows the metro in both space and schedule is a candidate
for rescheduling or withdrawal.

We synthesise a fleet of bus trajectories on different corridors, one
metro timetable run, and ask the index for the k most similar buses.
The metro run is sampled at a *much* coarser rate than the bus GPS
loggers — exactly the situation DISSIM handles and sequence alignment
does not.

Run:  python examples/transit_planning.py
"""

import math
import random

from repro import RTree3D, Trajectory, TrajectoryDataset, bfmst_search


def corridor_route(start, end, wiggle, n, duration, rng, phase=0.0):
    """A route from start to end with lateral wiggle (streets aren't
    straight), sampled n times over [0, duration]."""
    points = []
    for i in range(n):
        f = i / (n - 1)
        x = start[0] + f * (end[0] - start[0])
        y = start[1] + f * (end[1] - start[1])
        # lateral deviation perpendicular-ish to the corridor
        y += wiggle * math.sin(6.0 * math.pi * f + phase)
        x += rng.uniform(-0.02, 0.02)
        points.append((x, y, f * duration))
    return points


def build_bus_fleet(rng) -> TrajectoryDataset:
    """40 buses on 8 corridors; corridor 0 parallels the new metro."""
    dataset = TrajectoryDataset()
    corridors = [
        ((0.0, 5.0), (10.0, 5.0)),  # 0: the metro-parallel corridor
        ((0.0, 0.0), (10.0, 10.0)),
        ((0.0, 10.0), (10.0, 0.0)),
        ((5.0, 0.0), (5.0, 10.0)),
        ((0.0, 2.0), (10.0, 2.0)),
        ((0.0, 8.0), (10.0, 8.0)),
        ((2.0, 0.0), (2.0, 10.0)),
        ((8.0, 0.0), (8.0, 10.0)),
    ]
    oid = 0
    for cid, (a, b) in enumerate(corridors):
        for _ in range(5):
            # Buses log GPS every ~30 s: 120 samples per hour run.
            pts = corridor_route(
                a, b, wiggle=0.15, n=120, duration=3600.0, rng=rng,
                phase=rng.uniform(0, math.pi),
            )
            dataset.add(Trajectory(oid, pts))
            oid += 1
    return dataset, len(corridors)


def metro_run(rng) -> Trajectory:
    """The new metro line: same corridor as corridor 0, but sampled
    only at its 12 stations (coarse timetable data)."""
    pts = corridor_route(
        (0.0, 5.2), (10.0, 5.2), wiggle=0.0, n=12, duration=3600.0, rng=rng
    )
    return Trajectory(-1, pts)


def main() -> None:
    rng = random.Random(2026)
    dataset, num_corridors = build_bus_fleet(rng)
    query = metro_run(rng)

    index = RTree3D()
    index.bulk_insert(dataset)
    index.finalize()

    result = bfmst_search(
        index, None, query, period=(query.t_start, query.t_end), k=8
    )
    matches, stats = result.matches, result.stats

    print("=== Bus routes most similar to the new metro run ===")
    print(
        f"fleet: {len(dataset)} buses on {num_corridors} corridors, "
        f"metro timetable has {len(query)} stations"
    )
    print(f"{'rank':>4}  {'bus':>4}  {'corridor':>8}  {'DISSIM':>12}")
    for rank, m in enumerate(matches, start=1):
        corridor = m.trajectory_id // 5
        print(
            f"{rank:>4}  {m.trajectory_id:>4}  {corridor:>8}  {m.dissim:>12.1f}"
        )
    parallel_hits = sum(1 for m in matches[:5] if m.trajectory_id // 5 == 0)
    print(
        f"\n{parallel_hits}/5 of the top matches run on the "
        f"metro-parallel corridor (expected: 5)."
    )
    print(
        f"pruning power: {stats.pruning_power:.1%} "
        f"({stats.node_accesses}/{stats.total_nodes} nodes touched)"
    )


if __name__ == "__main__":
    main()
