"""Fleet monitoring: one index, three query types.

The paper's systems claim is that k-MST search needs *no dedicated
index*: the same R-tree-like structure a moving-object database
already keeps for range and nearest-neighbour queries also serves
similarity search.  This example runs all three against one TB-tree
over a synthetic delivery fleet:

1. range query   — "which trucks entered the depot district between
                    08:00 and 09:00?"
2. point NN      — "which truck passed closest to the incident site
                    around 10:00?"
3. k-MST         — "which trucks drove most similarly to truck 0
                    today?" (route duplication detection)

Run:  python examples/fleet_monitoring.py
"""

from repro import TBTree, bfmst_search, generate_trucks, nearest_neighbours, range_query
from repro.geometry import MBR2D, Point


def main() -> None:
    # A day of fleet data: 60 trucks, positions sampled ~200 times.
    dataset = generate_trucks(60, samples_per_truck=200, seed=11)
    t0, t1 = dataset.time_span()
    day = t1 - t0

    index = TBTree()
    index.bulk_insert(dataset)
    index.finalize()
    print(
        f"TB-tree over {len(dataset)} trucks / "
        f"{dataset.total_segments()} segments: {index.num_nodes} nodes, "
        f"{index.size_mb():.2f} MB\n"
    )

    # ------------------------------------------------------------------
    print("1) range query: trucks in the depot district, 08:00-09:00")
    district = MBR2D(45.0, 45.0, 55.0, 55.0)  # around the depot
    window = (t0 + day / 3, t0 + day / 3 + day / 24)
    hits = set(range_query(index, None, district, period=window).ids)
    print(f"   {len(hits)} trucks: {sorted(hits)[:12]}{' ...' if len(hits) > 12 else ''}\n")

    # ------------------------------------------------------------------
    print("2) nearest neighbour: closest trucks to an incident at (20, 80)")
    incident = Point(20.0, 80.0)
    around_ten = (t0 + 0.40 * day, t0 + 0.45 * day)
    nn = nearest_neighbours(index, None, incident, period=around_ten, k=3)
    for tid, dist in ((m.trajectory_id, m.dissim) for m in nn):
        print(f"   truck {tid:3d} came within {dist:7.2f} units")
    print()

    # ------------------------------------------------------------------
    print("3) k-MST: trucks whose day most resembles truck 0's route")
    reference = dataset[0]
    result = bfmst_search(
        index,
        None,
        reference,
        period=(reference.t_start, reference.t_end),
        k=4,
        exclude_ids={0},  # don't report the truck itself
    )
    matches, stats = result.matches, result.stats
    for rank, m in enumerate(matches, start=1):
        print(f"   {rank}. truck {m.trajectory_id:3d}  DISSIM = {m.dissim:10.1f}")
    print(
        f"   (search touched {stats.node_accesses}/{stats.total_nodes} "
        f"nodes, pruning power {stats.pruning_power:.1%})"
    )
    print(
        "\nSame index, three query types — no similarity-specific "
        "structure was built."
    )


if __name__ == "__main__":
    main()
