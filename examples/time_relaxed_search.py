"""Time-relaxed MST + query cost estimation — the paper's two
future-work directions, working together.

Scenario: vehicle 1 drives a fixed commute route A -> B every day
between 1:00 h and 2:00 h into the archive window.  Today the same
drive happened **40 minutes late**.  A strict (time-aligned) DISSIM
query comparing today's GPS log against the archive fails to rank
vehicle 1 first — at the delayed clock time the archived vehicle was
already parked at B.  The *time-relaxed* query slides the window,
recovers the match and reads off the delay.

The selectivity histogram then predicts how expensive index-backed
queries over different windows would be — the statistic a query
optimiser would consult (the paper's other future-work direction).

Run:  python examples/time_relaxed_search.py
"""

import random

from repro import (
    SpatioTemporalHistogram,
    Trajectory,
    TrajectoryDataset,
    dissim_exact,
    time_relaxed_kmst,
)

HOUR = 3600.0
WINDOW = 3.0 * HOUR  # archive covers 3 hours


def commute(object_id, depart, a=(1.0, 1.0), b=(9.0, 8.0), n=40):
    """Parked at A, drive A->B during [depart, depart+1h], parked at B.
    Sampled ``n`` times over the drive plus a few parked samples."""
    pts = [(a[0], a[1], 0.0)]
    for i in range(n):
        f = i / (n - 1)
        pts.append(
            (
                a[0] + f * (b[0] - a[0]),
                a[1] + f * (b[1] - a[1]),
                depart + f * HOUR,
            )
        )
    pts.append((b[0], b[1], WINDOW))
    return Trajectory(object_id, pts)


def wanderer(object_id, rng):
    pts = []
    x, y = rng.uniform(0, 10), rng.uniform(0, 10)
    for i in range(60):
        t = i / 59 * WINDOW
        x = min(max(x + rng.uniform(-0.4, 0.4), 0.0), 10.0)
        y = min(max(y + rng.uniform(-0.4, 0.4), 0.0), 10.0)
        pts.append((x, y, t))
    return Trajectory(object_id, pts)


def main() -> None:
    rng = random.Random(8)
    archive = TrajectoryDataset()
    archive.add(commute(1, depart=1.0 * HOUR))  # the scheduled run
    for oid in range(2, 11):
        archive.add(wanderer(oid, rng))

    # Today's log: the same drive, delayed 40 minutes, coarsely sampled.
    delay = 40.0 * 60.0
    today_full = commute(-1, depart=1.0 * HOUR + delay, n=12)
    today = today_full.sliced(1.0 * HOUR + delay, 2.0 * HOUR + delay)

    print("=== strict (time-aligned) DISSIM at today's clock time ===")
    strict = sorted(
        (dissim_exact(today, tr, (today.t_start, today.t_end)), tr.object_id)
        for tr in archive
    )
    for d, oid in strict[:3]:
        print(f"  object {oid:2d}  DISSIM = {d:9.1f}")
    rank_of_1 = [oid for _d, oid in strict].index(1) + 1
    print(
        f"vehicle 1 (the true match) ranks #{rank_of_1} — during today's "
        f"drive window the archived run was already parked at B."
    )

    print("\n=== time-relaxed k-MST ===")
    relaxed = time_relaxed_kmst(None, archive, today, k=3)
    results = [(m, relaxed.extras["shifts"][m.trajectory_id]) for m in relaxed.matches]
    for rank, (m, shift) in enumerate(results, start=1):
        print(
            f"  {rank}. object {m.trajectory_id:2d}  "
            f"min DISSIM = {m.dissim:9.2f}  at shift {shift:+7.0f} s"
        )
    best, best_shift = results[0]
    print(
        f"\nvehicle {best.trajectory_id} wins with a recovered shift of "
        f"{-best_shift:.0f} s ~ the {delay:.0f} s delay."
    )

    print("\n=== query cost estimation (selectivity histogram) ===")
    hist = SpatioTemporalHistogram(archive, nx=10, ny=10, nt=10)
    for hours in (0.5, 1.0, 3.0):
        est = hist.estimate_mst_cost(archive[1], 0.0, hours * HOUR)
        print(
            f"  {hours:3.1f} h window: ~{est.alive_segments:6.0f} segments "
            f"alive, {est.corridor_fraction:.0%} near the query corridor"
        )
    print(
        "Short windows leave most data outside the corridor — exactly "
        "when BFMST's pruning pays off."
    )


if __name__ == "__main__":
    main()
