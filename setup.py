"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works with older setuptools/pip combinations
that lack PEP 660 editable-wheel support.
"""

from setuptools import setup

setup()
