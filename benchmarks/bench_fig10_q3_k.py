"""Figure 10, Q3 — BFMST scaling with k.

Paper setup (Table 3): dataset S0500, query length 5 %, k = 1...10,
both trees.

Paper's shape: execution time grows *sub-linearly* with k (the first
answer does most of the work; enlarging the buffer barely widens the
frontier) and pruning power stays high.
"""

from repro.experiments import ascii_multi_chart, format_table, q3_k

from conftest import emit, perf_point_records, scaled, traced_query_record

KS = (1, 2, 5, 10)


def test_fig10_q3_k(benchmark):
    points = benchmark.pedantic(
        lambda: q3_k(
            ks=KS,
            num_objects=500,
            samples_per_object=scaled(150),
            num_queries=scaled(8),
            query_length=0.05,
            trees=("rtree", "tbtree"),
            verify=False,
            page_size=512,
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        [p.tree, int(p.value), p.mean_time_ms, p.mean_pruning_power,
         p.mean_node_accesses]
        for p in points
    ]
    text = format_table(
        ["tree", "k", "mean time (ms)", "pruning power", "node accesses"],
        rows,
        title="Figure 10 Q3: scaling with k (S0500, 5% query)",
    )
    xs = sorted({p.value for p in points})
    series = {
        tree: [
            next(p.mean_time_ms for p in points if p.tree == tree and p.value == x)
            for x in xs
        ]
        for tree in ("rtree", "tbtree")
    }
    text += "\n\nexecution time (ms) vs k:\n"
    text += ascii_multi_chart(xs, series, height=10, width=50)
    records = perf_point_records("fig10_q3_k", points)
    records.append(traced_query_record("fig10_q3_k", k=max(KS)))
    emit("fig10_q3_k", text, records=records)

    by = {(p.tree, p.value): p for p in points}
    for tree in ("rtree", "tbtree"):
        t1 = by[(tree, 1.0)].mean_time_ms
        t10 = by[(tree, 10.0)].mean_time_ms
        # sub-linear in k: 10x the answers must cost less than 10x the
        # time (paper: clearly sub-linear; the TB-tree especially so).
        assert t10 < 10.0 * t1, f"{tree}: k=10 cost {t10 / t1:.1f}x k=1"
        # more answers can only widen the visited frontier
        assert (
            by[(tree, 10.0)].mean_node_accesses
            >= by[(tree, 1.0)].mean_node_accesses - 1e-9
        )
    assert (
        by[("tbtree", 10.0)].mean_time_ms
        < 5.0 * by[("tbtree", 1.0)].mean_time_ms
    )
    # pruning power stays high across all k (paper: > 90 %).
    for p in points:
        assert p.mean_pruning_power > 0.85
