"""Figure 9 — quality of the similarity measures under compression.

The paper's protocol: compress every Trucks trajectory with TD-TR at
p in {0.1 %, 1 %, 2 %, 5 %, 10 %}, query the original dataset with each
compressed copy (k = 1) and count the *false* answers (original not
returned as most similar) for DISSIM, LCSS, LCSS-I, EDR, EDR-I.

Paper's shape: DISSIM stays at ~0 % until p > 5 %; LCSS (and LCSS-I)
close but always worse; EDR / EDR-I collapse (> 60 % false) beyond
p = 1 %.  The EDR failure needs heterogeneous trajectory lengths (its
Section 5.2 analysis: a short trajectory T beats the original once
``max(m, |T|) <= n - m``), so the fleet is generated with ±50 %
length variation like real fleet data.
"""

from repro.datagen import generate_trucks
from repro.experiments import (
    DEFAULT_MEASURES,
    format_table,
    quality_experiment,
)

from conftest import emit, scaled

P_VALUES = (0.001, 0.01, 0.02, 0.05, 0.10)


def test_fig9_false_results(benchmark):
    dataset = generate_trucks(
        scaled(40),
        samples_per_truck=scaled(150),
        seed=29,
        length_variation=0.5,
        num_routes=12,
    )

    points = benchmark.pedantic(
        lambda: quality_experiment(
            dataset,
            p_values=P_VALUES,
            measures=DEFAULT_MEASURES,
            max_queries=scaled(25),
            seed=5,
        ),
        rounds=1,
        iterations=1,
    )

    by = {(pt.measure, pt.p): pt for pt in points}
    rows = [
        [m] + [f"{by[(m, p)].failure_rate:.0%}" for p in P_VALUES]
        for m in DEFAULT_MEASURES
    ]
    text = format_table(
        ["measure"] + [f"p={p * 100:g}%" for p in P_VALUES],
        rows,
        title="Figure 9: false 1-MST results vs TD-TR parameter",
    )
    emit("fig9_quality", text)

    # Shape assertions (the paper's qualitative claims):
    # 1. DISSIM is perfect up to p = 5 %.
    for p in (0.001, 0.01, 0.02, 0.05):
        assert by[("DISSIM", p)].failures == 0, f"DISSIM failed at p={p}"
    # 2. DISSIM is never worse than any competitor at any p.
    for p in P_VALUES:
        d = by[("DISSIM", p)].failures
        for m in ("LCSS", "LCSS-I", "EDR", "EDR-I"):
            assert d <= by[(m, p)].failures
    # 3. EDR degrades markedly at strong compression.
    assert by[("EDR", 0.10)].failure_rate >= 0.2
    assert by[("EDR", 0.10)].failures >= by[("EDR", 0.001)].failures
