"""Ablation — the trapezoid approximation vs the exact integral.

The paper replaces the arcsinh closed form with the trapezoid rule
(Lemma 1) to cut DISSIM's cost.  This bench quantifies that choice on
random trajectory pairs: per-call cost ratio, and the empirical error
against the certified Lemma 1 bound (which must never be violated).

Finding recorded in EXPERIMENTS.md: on modern CPython the two cost
about the same — interval splitting/clipping dominates and C-level
``math.asinh`` is cheap — so the approximation's value today is the
*error-bound machinery* (it powers the certified pruning of Section
4.4), not raw speed.  The accuracy side fully reproduces: the bound is
never violated and the over-estimate stays under a percent on smooth
data.
"""

import random

from repro import Trajectory, dissim, dissim_exact
from repro.experiments import format_table

from conftest import emit, scaled


def _random_pair(rng, samples):
    def one(idx):
        t = 0.0
        pts = []
        x, y = rng.random(), rng.random()
        for _ in range(samples):
            pts.append((x, y, t))
            t += rng.uniform(0.5, 1.5)
            x += rng.uniform(-0.05, 0.05)
            y += rng.uniform(-0.05, 0.05)
        tr = Trajectory(idx, pts)
        return tr.sliced(0.0, min(t - 1.5, tr.t_end))

    a = one(0)
    b = one(1)
    lo = max(a.t_start, b.t_start)
    hi = min(a.t_end, b.t_end)
    return a.sliced(lo, hi), b.sliced(lo, hi).with_id(1)


PAIRS = 60


def _make_pairs():
    rng = random.Random(99)
    return [_random_pair(rng, scaled(80)) for _ in range(PAIRS)]


def test_trapezoid_speedup_and_certified_error(benchmark):
    pairs = _make_pairs()

    import time

    def run_exact():
        return [dissim_exact(a, b) for a, b in pairs]

    def run_approx():
        return [dissim(a, b) for a, b in pairs]

    t0 = time.perf_counter()
    exact_values = run_exact()
    exact_time = time.perf_counter() - t0

    results = benchmark.pedantic(run_approx, rounds=1, iterations=1)
    t0 = time.perf_counter()
    run_approx()
    approx_time = time.perf_counter() - t0

    worst_rel_err = 0.0
    violations = 0
    for exact, res in zip(exact_values, results):
        if not (res.lower - 1e-9 <= exact <= res.upper + 1e-9):
            violations += 1
        if exact > 0:
            worst_rel_err = max(worst_rel_err, (res.approx - exact) / exact)

    text = format_table(
        ["metric", "value"],
        [
            ["trajectory pairs", PAIRS],
            ["exact total (s)", exact_time],
            ["trapezoid total (s)", approx_time],
            ["speedup", exact_time / approx_time],
            ["worst relative over-estimate", worst_rel_err],
            ["certified-bound violations", violations],
        ],
        title="Ablation: trapezoid approximation vs exact integral",
        float_fmt="{:.4f}",
    )
    emit("ablation_approximation", text)

    assert violations == 0
    # the approximation over-estimates only mildly on smooth data
    assert worst_rel_err < 0.05
