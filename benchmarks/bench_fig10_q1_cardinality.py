"""Figure 10, Q1 — BFMST scaling with dataset cardinality.

Paper setup (Table 3): datasets S0100...S1000, query = 5 % of a random
data trajectory, k = 1, both trees; panels report mean execution time
and pruning power.

Paper's shape: execution time grows ~linearly with the number of
moving objects; pruning power stays above 90 % and roughly flat; the
3D R-tree beats the TB-tree at this (short) query length.
"""

from repro.experiments import ascii_multi_chart, format_table, q1_cardinality

from conftest import emit, perf_point_records, scaled, traced_query_record


def test_fig10_q1_cardinality(benchmark):
    points = benchmark.pedantic(
        lambda: q1_cardinality(
            cardinalities=(100, 250, 500, 1000),
            samples_per_object=scaled(150),
            num_queries=scaled(10),
            query_length=0.05,
            trees=("rtree", "tbtree"),
            verify=False,
            page_size=512,
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        [p.tree, int(p.value), p.mean_time_ms, p.mean_pruning_power,
         p.mean_node_accesses]
        for p in points
    ]
    text = format_table(
        ["tree", "objects", "mean time (ms)", "pruning power", "node accesses"],
        rows,
        title="Figure 10 Q1: scaling with dataset cardinality (5% query, k=1)",
    )
    xs = sorted({p.value for p in points})
    series = {
        tree: [
            next(p.mean_time_ms for p in points if p.tree == tree and p.value == x)
            for x in xs
        ]
        for tree in ("rtree", "tbtree")
    }
    text += "\n\nexecution time (ms) vs objects:\n"
    text += ascii_multi_chart(xs, series, height=10, width=50)
    records = perf_point_records("fig10_q1_cardinality", points)
    records.append(traced_query_record("fig10_q1_cardinality", k=1))
    emit("fig10_q1_cardinality", text, records=records)

    by = {(p.tree, p.value): p for p in points}
    for tree in ("rtree", "tbtree"):
        # time grows with cardinality...
        assert by[(tree, 1000.0)].mean_time_ms > by[(tree, 100.0)].mean_time_ms
        # ...sub-quadratically (linear-ish): 10x objects < ~30x time.
        ratio = by[(tree, 1000.0)].mean_time_ms / by[(tree, 100.0)].mean_time_ms
        assert ratio < 30.0, f"{tree}: time ratio {ratio:.1f} looks super-linear"
    # pruning power is high (paper: > 90 % throughout, both trees) and
    # does not collapse with cardinality.
    for p in points:
        assert p.mean_pruning_power > 0.9, (
            f"{p.tree} pruning {p.mean_pruning_power:.2f} at {p.value}"
        )
