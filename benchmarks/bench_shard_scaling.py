"""Shard scaling — queries/sec and node expansions at 1/2/4/8 shards.

The serving story of the sharding layer: a temporally staggered GSTD
fleet (eight epochs of movement, like a fleet whose days are logged
back to back) is partitioned by the temporal partitioner, and the
planner prunes the shards whose time extent cannot overlap a query
before any heap is built, while the shared cross-shard k-th-best bound
keeps the *searched* shards from expanding nodes a single tree would
have pruned.

Two acceptance bars, asserted here and recorded as BENCH JSONL:

* total node expansions with shared-bound pruning stay <= 1.25x the
  single-index count at every shard count, and
* the 4-shard threaded configuration sustains >= 1.5x the 1-shard
  queries/sec on the same workload.

Answers must be byte-identical to the single tree throughout.

The expansion bar is deterministic and asserted unconditionally.  The
queries/sec bar measures *parallel* shard fan-out, so it is asserted
only on hosts where threads can actually run in parallel (two or more
cores and a free-threaded interpreter); on a single-core or
GIL-serialised host every thread of the fan-out shares one stream of
bytecode, the comparison degenerates to measuring scheduler overhead,
and no implementation could meet the bar.  The measured ratio is
recorded in the BENCH JSONL either way (``parallel_capable`` says
which regime produced it).
"""

import json
import os
import resource
import sys
import time

from repro import RTree3D, Trajectory, TrajectoryDataset
from repro.datagen import generate_gstd, make_workload
from repro.engine import (
    EngineConfig,
    QueryEngine,
    QueryRequest,
    ShardedQueryEngine,
)
from repro.experiments import format_table
from repro.sharding import (
    ShardedDataset,
    build_sharded_index,
    make_partitioner,
    save_sharded_index,
)

from conftest import emit, scaled

SHARD_COUNTS = (1, 2, 4, 8)
EPOCHS = 8
EPOCH_GAP = 2500.0  # GSTD spans [0, 2000]; epochs must not overlap
K = 5
REPEATS = 3
TIMING_TRIALS = 3  # wall time is best-of-N; counters are trial-invariant


def _parallel_capable():
    """True when threads can really run concurrently on this host."""
    cores = os.cpu_count() or 1
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    return cores >= 2 and not gil_enabled


def _staggered_fleet():
    """Eight GSTD epochs laid out back to back on the time axis, plus a
    workload of per-epoch queries (period inside one epoch each)."""
    dataset = TrajectoryDataset()
    workload = []
    for epoch in range(EPOCHS):
        raw = generate_gstd(
            scaled(10), samples_per_object=scaled(24), seed=100 + epoch
        )
        offset = epoch * EPOCH_GAP
        shifted = TrajectoryDataset()
        for tr in raw:
            shifted.add(
                Trajectory(
                    epoch * 1000 + tr.object_id,
                    [(p.x, p.y, p.t + offset) for p in tr.samples],
                )
            )
        for tr in shifted:
            dataset.add(tr)
        for query, period in make_workload(shifted, 2, 0.25, seed=7 + epoch):
            workload.append((query, period))
    return dataset, workload * REPEATS


def _answers(batch):
    return [
        tuple((m.trajectory_id, m.dissim) for m in r.matches)
        for r in batch.results
    ]


def _expansions(batch):
    return sum(r.stats.node_accesses for r in batch.results)


def test_shard_scaling(benchmark):
    dataset, workload = _staggered_fleet()
    requests = [QueryRequest("mst", q, p, k=K) for q, p in workload]

    def run_all():
        # Single-tree baseline (the pre-sharding engine).
        single = RTree3D(page_size=1024)
        single.bulk_insert(dataset)
        single.finalize()
        with QueryEngine(single, dataset) as engine:
            engine.run_batch(requests)  # warm-up
            base_s = float("inf")
            for _ in range(TIMING_TRIALS):
                t0 = time.perf_counter()
                base = engine.run_batch(requests)
                base_s = min(base_s, time.perf_counter() - t0)
        baseline = {
            "answers": _answers(base),
            "qps": len(requests) / base_s,
            "expansions": _expansions(base),
        }

        points = []
        for num_shards in SHARD_COUNTS:
            sharded_ds = ShardedDataset.partition(
                dataset, make_partitioner("temporal", num_shards)
            )
            sharded = build_sharded_index(
                sharded_ds, RTree3D, page_size=1024
            )
            config = EngineConfig(executor="thread", max_workers=4)
            with ShardedQueryEngine(
                sharded, sharded_ds, config=config
            ) as engine:
                engine.run_batch(requests)  # warm-up
                wall = float("inf")
                for _ in range(TIMING_TRIALS):
                    t0 = time.perf_counter()
                    batch = engine.run_batch(requests)
                    wall = min(wall, time.perf_counter() - t0)
                points.append(
                    {
                        "num_shards": num_shards,
                        "answers": _answers(batch),
                        "qps": len(requests) / wall,
                        "expansions": _expansions(batch),
                        # the planner ran once per batch (warm-up + trials)
                        "shards_pruned": engine.metrics.value(
                            "engine.planner.shards_pruned"
                        ) // (TIMING_TRIALS + 1),
                    }
                )
            sharded.close()
        return baseline, points

    baseline, points = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        ["single index", "-", len(requests), f"{baseline['qps']:.1f}",
         baseline["expansions"], "1.00"],
    ]
    records = [
        {
            "bench": "shard_scaling",
            "mode": "single_index",
            "num_queries": len(requests),
            "queries_per_sec": baseline["qps"],
            "node_expansions": baseline["expansions"],
        }
    ]
    qps_by_count = {}
    for point in points:
        ratio = point["expansions"] / baseline["expansions"]
        qps_by_count[point["num_shards"]] = point["qps"]
        rows.append(
            [
                f"{point['num_shards']} shard(s)",
                point["shards_pruned"],
                len(requests),
                f"{point['qps']:.1f}",
                point["expansions"],
                f"{ratio:.2f}",
            ]
        )
        records.append(
            {
                "bench": "shard_scaling",
                "mode": f"sharded_{point['num_shards']}",
                "num_shards": point["num_shards"],
                "num_queries": len(requests),
                "queries_per_sec": point["qps"],
                "node_expansions": point["expansions"],
                "expansion_ratio_vs_single": ratio,
                "qps_vs_1_shard": None,  # filled below
                "shards_pruned": point["shards_pruned"],
                "parallel_capable": _parallel_capable(),
            }
        )
    for record in records[1:]:
        record["qps_vs_1_shard"] = (
            record["queries_per_sec"] / qps_by_count[1]
        )

    text = format_table(
        ["configuration", "pruned", "queries", "queries/sec",
         "node expansions", "vs single"],
        rows,
        title=f"Shard scaling, temporal partitioner (k={K}, "
        f"{EPOCHS} staggered GSTD epochs)",
    )
    emit("shard_scaling", text, records=records)
    for record in records:
        sys.__stdout__.write(
            f"BENCH {json.dumps(record, sort_keys=True)}\n"
        )
    sys.__stdout__.flush()

    # Byte-identical answers at every shard count.
    for point in points:
        assert point["answers"] == baseline["answers"], point["num_shards"]

    # Shared-bound pruning keeps total expansions <= 1.25x one tree.
    for point in points:
        assert point["expansions"] <= 1.25 * baseline["expansions"], point

    # Parallel fan-out pays: >= 1.5x queries/sec at 4 shards vs 1 shard.
    # Only meaningful where threads genuinely run in parallel; on a
    # single-core or GIL-serialised host the ratio is recorded in the
    # JSONL above but measures scheduler overhead, not fan-out.
    speedup = qps_by_count[4] / qps_by_count[1]
    if _parallel_capable():
        assert speedup >= 1.5, qps_by_count
    else:
        sys.__stdout__.write(
            "BENCH NOTE shard_scaling: queries/sec bar recorded but not "
            f"asserted (serial host; 4-shard/1-shard = {speedup:.2f}x)\n"
        )
        sys.__stdout__.flush()


# ----------------------------------------------------------------------
# process-pool scaling — cores sweep over shared mmap pages
# ----------------------------------------------------------------------
WORKER_COUNTS = (1, 2, 4)
PROCPOOL_RESULT = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_procpool.json"
)


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def _timed_sweep(engine, requests):
    """Best-of-N per-query latency sweep: returns (qps, p50_ms, p99_ms,
    answers) for the fastest trial."""
    best_wall = float("inf")
    best_latencies = None
    answers = None
    for _ in range(TIMING_TRIALS):
        latencies = []
        results = []
        t0 = time.perf_counter()
        for request in requests:
            q0 = time.perf_counter()
            results.append(engine.execute(request))
            latencies.append(time.perf_counter() - q0)
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall = wall
            best_latencies = sorted(latencies)
            answers = [r.answer_json() for r in results]
    return (
        len(requests) / best_wall,
        _percentile(best_latencies, 0.50) * 1000.0,
        _percentile(best_latencies, 0.99) * 1000.0,
        answers,
    )


def test_procpool_scaling(benchmark, tmp_path):
    """Worker-count sweep for the process-per-shard executor.

    The same staggered fleet is saved once as a 4-shard temporal mmap
    index; every engine in the sweep (serial plus process pools of 1, 2
    and 4 workers) opens the same page files, so the only variable is
    the executor.  Answers must be byte-identical to serial at every
    worker count.  Queries/sec, p50/p99 latency and the child-process
    RSS high-water for each point land in ``BENCH_procpool.json`` at
    the repo root; the >= 2.5x @ 4 cores and < 1.3x RSS-growth bars are
    asserted only on hosts with at least four cores (below that the
    sweep cannot express parallelism and the numbers are recorded
    unasserted).
    """
    dataset, workload = _staggered_fleet()
    requests = [QueryRequest("mst", q, p, k=K) for q, p in workload]
    directory = tmp_path / "shards"
    sharded_ds = ShardedDataset.partition(
        dataset, make_partitioner("temporal", 4)
    )
    sharded = build_sharded_index(sharded_ds, RTree3D, page_size=1024)
    save_sharded_index(sharded, directory)
    sharded.close()

    def run_all():
        with ShardedQueryEngine.open(
            directory, config=EngineConfig(executor="serial"), backend="mmap"
        ) as engine:
            engine.run_batch(requests)  # warm-up
            serial_qps, serial_p50, serial_p99, serial_answers = _timed_sweep(
                engine, requests
            )
        serial_point = {
            "executor": "serial",
            "workers": 0,
            "queries_per_sec": serial_qps,
            "p50_ms": serial_p50,
            "p99_ms": serial_p99,
        }

        points = []
        for workers in WORKER_COUNTS:
            config = EngineConfig(executor="process", max_workers=workers)
            with ShardedQueryEngine.open(
                directory, config=config, backend="mmap"
            ) as engine:
                engine.run_batch(requests)  # warm-up (forks + opens mmaps)
                qps, p50, p99, answers = _timed_sweep(engine, requests)
            # high-water of the largest pool worker so far (the pool is
            # closed, so this sweep's workers have been reaped and are
            # included); mmap page sharing should keep this flat as the
            # worker count grows
            child_rss = resource.getrusage(
                resource.RUSAGE_CHILDREN
            ).ru_maxrss
            assert answers == serial_answers, workers
            points.append(
                {
                    "executor": "process",
                    "workers": workers,
                    "queries_per_sec": qps,
                    "p50_ms": p50,
                    "p99_ms": p99,
                    "child_rss_high_water_kb": child_rss,
                }
            )
        return serial_point, points

    serial_point, points = benchmark.pedantic(run_all, rounds=1, iterations=1)

    cores = os.cpu_count() or 1
    qps_by_workers = {p["workers"]: p["queries_per_sec"] for p in points}
    speedup = qps_by_workers[4] / qps_by_workers[1]
    rss_growth = (
        points[-1]["child_rss_high_water_kb"]
        / max(1, points[0]["child_rss_high_water_kb"])
    )
    doc = {
        "bench": "procpool_scaling",
        "cores": cores,
        "num_queries": len(requests),
        "k": K,
        "serial": serial_point,
        "points": points,
        "qps_4_vs_1_workers": speedup,
        "child_rss_growth_4_vs_1": rss_growth,
        "bars_asserted": cores >= 4,
    }
    with open(PROCPOOL_RESULT, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

    rows = [
        ["serial", "-", f"{serial_point['queries_per_sec']:.1f}",
         f"{serial_point['p50_ms']:.2f}", f"{serial_point['p99_ms']:.2f}",
         "-"],
    ]
    records = [dict(serial_point, bench="procpool_scaling")]
    for point in points:
        rows.append(
            [
                f"process x{point['workers']}",
                point["workers"],
                f"{point['queries_per_sec']:.1f}",
                f"{point['p50_ms']:.2f}",
                f"{point['p99_ms']:.2f}",
                point["child_rss_high_water_kb"],
            ]
        )
        records.append(dict(point, bench="procpool_scaling", cores=cores))
    text = format_table(
        ["executor", "workers", "queries/sec", "p50 ms", "p99 ms",
         "child RSS kB"],
        rows,
        title=f"Process-pool scaling, 4 temporal shards over mmap "
        f"(k={K}, {cores} core(s))",
    )
    emit("procpool_scaling", text, records=records)
    for record in records:
        sys.__stdout__.write(f"BENCH {json.dumps(record, sort_keys=True)}\n")
    sys.__stdout__.flush()

    # Scaling and memory bars need real cores to be meaningful.
    if cores >= 4:
        assert speedup >= 2.5, qps_by_workers
        assert rss_growth < 1.3, points
    else:
        sys.__stdout__.write(
            "BENCH NOTE procpool_scaling: bars recorded but not asserted "
            f"({cores} core(s); 4w/1w = {speedup:.2f}x, "
            f"RSS growth = {rss_growth:.2f}x)\n"
        )
        sys.__stdout__.flush()
