"""Figure 8 — TD-TR compression of one Trucks trajectory.

The paper shows one trajectory at p = 0 (168 vertices), 0.1 % (65),
1 % (29) and 2 % (22): the sketch survives, the local detail goes.  We
regenerate the vertex-count series on a synthetic truck of comparable
density and assert the qualitative shape (strong monotone decay, the
1 % level keeping well under a third of the vertices).
"""

from repro.datagen import generate_trucks
from repro.experiments import compression_profile, format_table

from conftest import emit, scaled


def test_fig8_vertex_counts(benchmark):
    # Mild GPS noise keeps the vertex budget honest: perfectly straight
    # synthetic legs would compress far more than a real GPS log.
    dataset = generate_trucks(
        10,
        samples_per_truck=scaled(168),
        seed=16,
        length_variation=0.0,
        gps_noise=0.03,
    )
    trajectory = dataset[4]
    p_values = (0.0, 0.001, 0.01, 0.02)

    profile = benchmark.pedantic(
        lambda: compression_profile(trajectory, p_values),
        rounds=1,
        iterations=1,
    )

    base = profile[0][1]
    rows = [
        [f"{p * 100:g} %", count, f"{count / base:.1%}"]
        for p, count in profile
    ]
    text = format_table(
        ["TD-TR p", "vertices", "kept"],
        rows,
        title=(
            "Figure 8: vertices after TD-TR compression "
            "(paper: 168 / 65 / 29 / 22)"
        ),
    )
    emit("fig8_compression", text)

    counts = [c for _p, c in profile]
    assert counts[0] == len(trajectory)
    assert counts == sorted(counts, reverse=True)
    # the paper's 1 % level kept 29/168 ~ 17 %; require < 40 % here.
    assert counts[2] < 0.4 * counts[0]
    assert counts[-1] >= 2
