"""Kernel throughput — vectorised batch kernels vs the scalar loops.

The two hot paths the ``kernels="numpy"`` mode vectorises, measured
head to head against the always-available scalar reference on the same
GSTD workload:

* **segment-DISSIM** — every leaf window a BFMST would integrate (each
  data segment clipped to the query period), evaluated with the scalar
  :func:`repro.distance.dissim.segment_dissim` loop vs one
  :func:`repro.distance.kernels.segment_dissim_batch` call.
* **node-expansion MINDIST** — each tree node's entries scored with the
  scalar :func:`repro.index.mindist.mindist` loop vs one
  :func:`repro.index.mindist.mindist_batch` call per node, exactly the
  shape of a best-first node expansion.

Both sides must return identical values (the batch kernels are
bit-equal by construction, and tests/test_kernels.py proves it); here
the acceptance bars are throughput: >= 3x on batched segment-DISSIM
and >= 2x on node-expansion MINDIST.  The scalar/vector rates land in
``benchmarks/results/`` and, machine-readable, in ``BENCH_kernels.json``
at the repo root so perf PRs can diff against a committed baseline.
"""

import json
import time
from pathlib import Path

import pytest

from repro import RTree3D
from repro.datagen import generate_gstd, make_workload
from repro.distance import kernels as dk
from repro.experiments import format_table
from repro.index.mindist import mindist_batch, mindist_batch_python

from conftest import emit, scaled

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

K_REPEATS = 5  # timed passes per side; best-of wins (noise floor)

SEGDISSIM_BAR = 3.0
MINDIST_BAR = 2.0


def _window_items(dataset, query, period):
    """The (segment, lo, hi) leaf windows a BFMST over ``dataset``
    would integrate — every data segment clipped to the query period
    and the query lifetime."""
    items = []
    for tr in dataset:
        for seg in tr.segments_overlapping(period[0], period[1]):
            lo = max(seg.ts, period[0], query.t_start)
            hi = min(seg.te, period[1], query.t_end)
            if lo < hi and query.covers(lo, hi):
                items.append((seg, lo, hi))
    return items


def _node_boxes(index):
    """Per-node entry MBB lists, the unit of a best-first expansion."""
    batches = []
    stack = [index.root_page]
    while stack:
        node = index.read_node(stack.pop())
        batches.append([e.mbr for e in node.entries])
        if not node.is_leaf:
            stack.extend(e.child_page for e in node.entries)
    return batches


def _best_of(fn, repeats=K_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_kernel_throughput(benchmark):
    if not dk.have_numpy():
        pytest.skip("numpy not installed; nothing to race against")

    dataset = generate_gstd(
        scaled(60), samples_per_object=scaled(80), seed=23, heading="random"
    )
    (query, period), = make_workload(dataset, 1, 0.35, seed=23)
    items = _window_items(dataset, query, period)
    index = RTree3D()  # default page size — realistic node fanout
    index.bulk_insert(dataset)
    index.finalize()
    node_boxes = _node_boxes(index)
    n_boxes = sum(len(b) for b in node_boxes)

    def run_all():
        # Warm-up: build the memoised columnar views outside the timers
        # so neither side pays the one-off construction.
        dk.segment_dissim_batch(query, items[:1])
        mindist_batch(query, node_boxes[0], period[0], period[1])

        sd_scalar_s, sd_ref = _best_of(
            lambda: dk.segment_dissim_batch_python(query, items)
        )
        sd_vector_s, sd_got = _best_of(
            lambda: dk.segment_dissim_batch(query, items)
        )

        md_scalar_s, md_ref = _best_of(
            lambda: [
                mindist_batch_python(query, boxes, period[0], period[1])
                for boxes in node_boxes
            ]
        )
        md_vector_s, md_got = _best_of(
            lambda: [
                mindist_batch(query, boxes, period[0], period[1])
                for boxes in node_boxes
            ]
        )
        return (
            (sd_scalar_s, sd_vector_s, sd_ref, sd_got),
            (md_scalar_s, md_vector_s, md_ref, md_got),
        )

    sd, md = benchmark.pedantic(run_all, rounds=1, iterations=1)
    sd_scalar_s, sd_vector_s, sd_ref, sd_got = sd
    md_scalar_s, md_vector_s, md_ref, md_got = md

    # Same answers before any timing claim.
    assert sd_got == sd_ref
    assert md_got == md_ref

    sd_speedup = sd_scalar_s / sd_vector_s
    md_speedup = md_scalar_s / md_vector_s
    rows = [
        [
            "segment-DISSIM",
            len(items),
            f"{len(items) / sd_scalar_s:,.0f}",
            f"{len(items) / sd_vector_s:,.0f}",
            f"{sd_speedup:.1f}x",
        ],
        [
            "node MINDIST",
            n_boxes,
            f"{n_boxes / md_scalar_s:,.0f}",
            f"{n_boxes / md_vector_s:,.0f}",
            f"{md_speedup:.1f}x",
        ],
    ]
    doc = {
        "bench": "kernels",
        "dataset": {
            "kind": "gstd",
            "objects": scaled(60),
            "samples_per_object": scaled(80),
            "seed": 23,
        },
        "segment_dissim": {
            "windows": len(items),
            "scalar_s": sd_scalar_s,
            "vector_s": sd_vector_s,
            "scalar_per_sec": len(items) / sd_scalar_s,
            "vector_per_sec": len(items) / sd_vector_s,
            "speedup": sd_speedup,
            "bar": SEGDISSIM_BAR,
        },
        "mindist": {
            "node_batches": len(node_boxes),
            "boxes": n_boxes,
            "scalar_s": md_scalar_s,
            "vector_s": md_vector_s,
            "scalar_per_sec": n_boxes / md_scalar_s,
            "vector_per_sec": n_boxes / md_vector_s,
            "speedup": md_speedup,
            "bar": MINDIST_BAR,
        },
    }
    text = format_table(
        ["kernel", "units", "scalar units/s", "vector units/s", "speedup"],
        rows,
        title="Vectorised kernels vs scalar loops (GSTD, best of "
        f"{K_REPEATS})",
    )
    emit("kernels", text, records=[doc])
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    # Acceptance bars from the issue: the batch kernels must not be a
    # marginal win.
    assert sd_speedup >= SEGDISSIM_BAR, doc["segment_dissim"]
    assert md_speedup >= MINDIST_BAR, doc["mindist"]
