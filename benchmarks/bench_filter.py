"""Signature filter tier — pruning power and end-to-end cost.

The filter (docs/FILTERING.md) checks a compact per-trajectory lower
bound before BFMST touches a leaf page or integrates a candidate.
This bench measures what that buys on a Table-2-scale GSTD workload,
for both trees, over the real serving path (index saved with its
signature sidecar, mmap-reloaded):

* **exact-DISSIM refinements** — candidate windows actually integrated
  (``dissim_evaluations``): every one the filter prunes is a candidate
  whose exact DISSIM machinery never ran.  The post-processing
  re-integrations (``refinement_candidates`` / ``refinement_skipped``)
  are recorded alongside.
* **node expansions** — index nodes read (``node_accesses``); the
  filter's leaf-skip hook drops whole pages whose trajectories are all
  settled.
* **pruned fraction and q/s** — signature checks that pruned, and the
  end-to-end throughput delta between ``filter="off"`` and ``"on"``.

Answers are asserted byte-identical between the two modes (the
filter's contract; tests/test_filter.py proves it exhaustively).

Acceptance bars from the issue, judged on the TB-tree (whose
single-trajectory leaves are what the leaf-skip was built for): >= 2x
fewer exact-DISSIM refinements and >= 1.5x fewer node expansions.
Human-readable table lands in ``benchmarks/results/``; the
machine-readable document in ``BENCH_filter.json`` at the repo root.
"""

import json
import time
from pathlib import Path

from repro import RTree3D
from repro.datagen import generate_gstd, make_workload
from repro.experiments import format_table
from repro.index.persistence import load_index, save_index
from repro.index.tbtree import TBTree
from repro.search import bfmst_search

from conftest import emit, scaled

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_filter.json"

REFINE_BAR = 2.0  # exact-DISSIM refinement reduction, filter off / on
NODE_BAR = 1.5  # node-expansion reduction, filter off / on

QUERIES = 12
K = 5
QUERY_LENGTH = 0.05  # fraction of the dataset window per query


def _run_workload(index, workload, mode):
    agg = {
        "dissim_evaluations": 0,
        "node_accesses": 0,
        "refinement_candidates": 0,
        "refinement_skipped": 0,
        "signature_checks": 0,
        "signature_pruned": 0,
        "leaf_skips": 0,
    }
    answers = []
    t0 = time.perf_counter()
    for query, period in workload:
        result = bfmst_search(
            index, None, query, period=period, k=K, filter=mode,
            kernels="auto",
        )
        answers.append(
            [
                (m.trajectory_id, m.dissim, m.error_bound, m.exact)
                for m in result.matches
            ]
        )
        stats = result.stats
        for key in agg:
            agg[key] += getattr(stats, key)
    agg["wall_s"] = time.perf_counter() - t0
    agg["qps"] = len(workload) / agg["wall_s"]
    return agg, answers


def test_filter_pruning(benchmark, tmp_path):
    dataset = generate_gstd(
        scaled(100), samples_per_object=scaled(25), seed=7
    )
    workload = make_workload(dataset, QUERIES, QUERY_LENGTH, seed=17)

    per_tree = {}
    rows = []
    for cls, label in ((TBTree, "tbtree"), (RTree3D, "rtree")):
        built = cls(page_size=512)
        built.bulk_insert(dataset)
        built.finalize()
        path = tmp_path / f"{label}.pages"
        meta = save_index(built, path, signatures=True)
        index = load_index(path)
        try:
            off, answers_off = _run_workload(index, workload, "off")
            on, answers_on = _run_workload(index, workload, "on")
        finally:
            if index.signatures is not None:
                index.signatures.close()
            index.pagefile.close()
        # The filter's contract: the answer bytes never change.
        assert answers_on == answers_off, label

        refine_reduction = off["dissim_evaluations"] / max(
            1, on["dissim_evaluations"]
        )
        node_reduction = off["node_accesses"] / max(1, on["node_accesses"])
        pruned_fraction = on["signature_pruned"] / max(
            1, on["signature_checks"]
        )
        per_tree[label] = {
            "dissim_evaluations_off": off["dissim_evaluations"],
            "dissim_evaluations_on": on["dissim_evaluations"],
            "refine_reduction": refine_reduction,
            "node_accesses_off": off["node_accesses"],
            "node_accesses_on": on["node_accesses"],
            "node_reduction": node_reduction,
            "refinement_candidates_off": off["refinement_candidates"],
            "refinement_candidates_on": on["refinement_candidates"],
            "refinement_skipped": on["refinement_skipped"],
            "leaf_skips": on["leaf_skips"],
            "signature_checks": on["signature_checks"],
            "signature_pruned": on["signature_pruned"],
            "pruned_fraction": pruned_fraction,
            "qps_off": off["qps"],
            "qps_on": on["qps"],
            "qps_delta": on["qps"] / off["qps"] - 1.0,
            "sidecar_bytes": meta["signatures"]["bytes"],
        }
        rows.append(
            [
                label,
                f"{off['dissim_evaluations']} -> {on['dissim_evaluations']}",
                f"{refine_reduction:.2f}x",
                f"{off['node_accesses']} -> {on['node_accesses']}",
                f"{node_reduction:.2f}x",
                f"{pruned_fraction:.0%}",
                f"{off['qps']:.1f} -> {on['qps']:.1f}",
            ]
        )

    doc = {
        "bench": "filter",
        "dataset": {
            "kind": "gstd",
            "objects": scaled(100),
            "samples_per_object": scaled(25),
            "seed": 7,
        },
        "workload": {
            "queries": QUERIES,
            "k": K,
            "query_length": QUERY_LENGTH,
            "seed": 17,
        },
        "bars": {"refine": REFINE_BAR, "nodes": NODE_BAR, "judged_on": "tbtree"},
        "trees": per_tree,
    }
    text = format_table(
        [
            "tree",
            "dissim evals",
            "refine cut",
            "node accesses",
            "node cut",
            "pruned",
            "q/s off -> on",
        ],
        rows,
        title=(
            "Signature filter: exact-DISSIM and node-expansion reductions "
            f"(GSTD {scaled(100)}x{scaled(25)}, k={K})"
        ),
    )
    emit("filter", text, records=[doc])
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    judged = per_tree["tbtree"]
    assert judged["refine_reduction"] >= REFINE_BAR, judged
    assert judged["node_reduction"] >= NODE_BAR, judged
