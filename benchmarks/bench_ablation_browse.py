"""Ablation — incremental distance browsing vs batch k-MST.

The Hjaltason-Samet framework BFMST builds on supports *incremental*
retrieval: take answers one at a time and stop when satisfied.  This
bench quantifies the benefit: cost of the first answer vs the tenth vs
a full enumeration, against re-running batch k-MST with growing k (the
naive alternative when the needed k is unknown).
"""

import itertools
import time

from repro.datagen import generate_gstd, make_workload
from repro.experiments import build_index, format_table
from repro.search import bfmst_browse, bfmst_search

from conftest import emit, scaled


def test_browse_vs_batch(benchmark):
    dataset = generate_gstd(
        scaled(200), samples_per_object=scaled(150), seed=41, heading="random"
    )
    index = build_index(dataset, "rtree", page_size=512)
    workload = make_workload(dataset, scaled(6), 0.05, seed=41)

    def run_all():
        rows = []
        for take in (1, 5, 10):
            t0 = time.perf_counter()
            accesses0 = index.node_accesses
            for query, period in workload:
                got = list(
                    itertools.islice(bfmst_browse(index, query, period), take)
                )
                assert len(got) == take
            browse_ms = 1000.0 * (time.perf_counter() - t0) / len(workload)
            browse_nodes = (index.node_accesses - accesses0) / len(workload)

            # naive alternative: re-run batch k-MST at k = 1..take
            t0 = time.perf_counter()
            accesses0 = index.node_accesses
            for query, period in workload:
                for k in range(1, take + 1):
                    bfmst_search(index, None, query, period=period, k=k)
            naive_ms = 1000.0 * (time.perf_counter() - t0) / len(workload)
            naive_nodes = (index.node_accesses - accesses0) / len(workload)
            rows.append(
                [take, browse_ms, browse_nodes, naive_ms, naive_nodes]
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    text = format_table(
        ["answers taken", "browse ms", "browse nodes",
         "re-query ms", "re-query nodes"],
        rows,
        title="Ablation: incremental browsing vs repeated batch k-MST",
    )
    emit("ablation_browse", text)

    by = {r[0]: r for r in rows}
    # browsing 10 answers beats re-running k = 1..10 batch queries
    assert by[10][1] < by[10][3]
    assert by[10][2] < by[10][4]
    # cost grows with answers taken but stays sane
    assert by[1][2] <= by[10][2]
