"""Ablation — the LRU buffer policy.

The paper's setup fixes the buffer at 10 % of the index (capped at
1000 pages).  This bench sweeps the fraction and reports buffer hit
ratios and physical reads per query on a workload with re-use (every
query runs twice — the re-execution/refinement pattern of an
interactive session): the hit ratio climbs with the buffer until the
workload's combined working set fits, then flattens — the knee sits
near the paper's 10 % operating point.
"""

from repro import bfmst_search
from repro.datagen import generate_gstd, make_workload
from repro.experiments import build_index, format_table

from conftest import emit, scaled

FRACTIONS = (0.02, 0.05, 0.10, 0.25, 0.50)


def test_buffer_fraction_sweep(benchmark):
    dataset = generate_gstd(
        scaled(200), samples_per_object=scaled(150), seed=37, heading="random"
    )
    index = build_index(dataset, "rtree", page_size=512, finalize=False)
    index.buffer.flush(index._serializer)
    workload = make_workload(dataset, scaled(12), 0.05, seed=37)

    def run_all():
        rows = []
        for fraction in FRACTIONS:
            index.buffer.capacity = max(
                2, int(index.pagefile.num_pages * fraction)
            )
            index.buffer.drop()
            stats0 = index.pagefile.stats.snapshot()
            for _pass in range(2):  # re-execution: the second pass can hit
                for query, period in workload:
                    bfmst_search(index, None, query, period=period, k=1)
            delta = index.pagefile.stats.diff(stats0)
            rows.append(
                [
                    f"{fraction:.0%}",
                    index.buffer.capacity,
                    delta.hit_ratio,
                    delta.physical_reads / (2 * len(workload)),
                ]
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    text = format_table(
        ["buffer fraction", "pages", "hit ratio", "physical reads/query"],
        rows,
        title="Ablation: LRU buffer size (paper operates at 10%)",
    )
    emit("ablation_buffer", text)

    # Bigger buffers never hurt, and the curve flattens: the marginal
    # gain of going 10% -> 50% is smaller than 2% -> 10%.
    hits = [r[2] for r in rows]
    for a, b in zip(hits, hits[1:]):
        assert b >= a - 0.02
    reads = [r[3] for r in rows]
    assert reads[-1] <= reads[0]
    gain_small_to_mid = hits[2] - hits[0]
    gain_mid_to_big = hits[-1] - hits[2]
    assert gain_small_to_mid >= gain_mid_to_big - 0.05
