"""Shared machinery for the benchmark suite.

Every bench regenerates one table/figure of the paper and *emits* it:
the rows are written both to the real stdout (bypassing pytest's
capture, so ``pytest benchmarks/ --benchmark-only | tee ...`` records
them) and to ``benchmarks/results/<name>.txt``.

Machine-readable counterpart: benches pass their data rows (and,
optionally, a live :mod:`repro.obs` trace) to :func:`emit` as
``records``; they land as JSON lines in
``benchmarks/results/<name>.counters.jsonl``, giving perf PRs a
regression baseline to diff against.

Scale: the paper's full datasets reach 2M entries — out of reach for a
pure-Python interactive run, so the benches default to a reduced scale
that preserves the scaling *shapes* (see EXPERIMENTS.md).  Set
``REPRO_BENCH_SCALE`` (default 1.0; e.g. 4.0 for a slower, closer-to-
paper run) to grow every dataset proportionally.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 2) -> int:
    """Scale a size parameter by REPRO_BENCH_SCALE."""
    return max(minimum, int(round(n * SCALE)))


def emit(name: str, text: str, records: list[dict] | None = None) -> None:
    """Print a result table to the *real* stdout (visible under pytest
    capture) and persist it under benchmarks/results/; when ``records``
    is given, mirror them as machine-readable JSON counter lines."""
    banner = f"\n{'=' * 72}\n{text}\n{'=' * 72}\n"
    sys.__stdout__.write(banner)
    sys.__stdout__.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if records is not None:
        emit_counters(name, records)


def emit_counters(name: str, records: list[dict]) -> None:
    """Write one JSON object per line to
    ``benchmarks/results/<name>.counters.jsonl`` and echo each line to
    the real stdout prefixed ``COUNTERS <name>`` so piped bench output
    stays greppable."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.counters.jsonl"
    with path.open("w") as fh:
        for record in records:
            line = json.dumps(record, sort_keys=True)
            fh.write(line + "\n")
            sys.__stdout__.write(f"COUNTERS {name} {line}\n")
    sys.__stdout__.flush()


def perf_point_records(bench: str, points) -> list[dict]:
    """Rows for :func:`emit_counters` from a list of
    :class:`repro.experiments.PerfPoint`."""
    return [
        {
            "bench": bench,
            "tree": p.tree,
            p.variable: p.value,
            "queries": p.queries,
            "mean_time_ms": p.mean_time_ms,
            "mean_pruning_power": p.mean_pruning_power,
            "mean_node_accesses": p.mean_node_accesses,
            "mean_leaf_accesses": p.mean_leaf_accesses,
            "mean_entries_processed": p.mean_entries_processed,
            "mismatches": p.mismatches,
        }
        for p in points
    ]


def traced_query_record(
    bench: str,
    k: int = 5,
    num_objects: int = 50,
    samples: int = 40,
    seed: int = 3,
) -> dict:
    """One representative BFMST query run under a live
    :func:`repro.obs.query_trace`: the full counter/IO document the
    observability layer exports, tagged with the bench name.  Cheap
    (small fresh dataset) and deterministic, so successive runs of the
    same bench diff cleanly."""
    from repro import RTree3D, bfmst_search, generate_gstd, make_workload
    from repro.obs import query_trace

    dataset = generate_gstd(num_objects, samples_per_object=samples, seed=seed)
    index = RTree3D(page_size=512)
    index.bulk_insert(dataset)
    index.finalize()
    (query, period), = make_workload(dataset, 1, 0.05, seed=seed)
    with query_trace(index, name=f"{bench}-traced") as trace:
        result = bfmst_search(index, None, query, period=period, k=k)
    return {
        "bench": bench,
        "traced_query": trace.as_dict(),
        "search_stats": result.stats.as_dict(),
    }


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return SCALE
