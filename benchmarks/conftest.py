"""Shared machinery for the benchmark suite.

Every bench regenerates one table/figure of the paper and *emits* it:
the rows are written both to the real stdout (bypassing pytest's
capture, so ``pytest benchmarks/ --benchmark-only | tee ...`` records
them) and to ``benchmarks/results/<name>.txt``.

Scale: the paper's full datasets reach 2M entries — out of reach for a
pure-Python interactive run, so the benches default to a reduced scale
that preserves the scaling *shapes* (see EXPERIMENTS.md).  Set
``REPRO_BENCH_SCALE`` (default 1.0; e.g. 4.0 for a slower, closer-to-
paper run) to grow every dataset proportionally.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 2) -> int:
    """Scale a size parameter by REPRO_BENCH_SCALE."""
    return max(minimum, int(round(n * SCALE)))


def emit(name: str, text: str) -> None:
    """Print a result table to the *real* stdout (visible under pytest
    capture) and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 72}\n{text}\n{'=' * 72}\n"
    sys.__stdout__.write(banner)
    sys.__stdout__.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return SCALE
