"""Serving tier — throughput/latency vs concurrency, plus overload.

A real :class:`~repro.serve.BackgroundServer` fronts a thread-pooled
:class:`~repro.engine.QueryEngine`; threaded clients (one keep-alive
connection each) replay a GSTD k-MST workload at 1, 4 and 16
concurrent clients, recording queries/sec and p50/p99 round-trip
latency.  Two gates:

* **fidelity** — every served answer must be byte-identical
  (``answer_json``) to the in-process ``engine.execute`` answer for
  the same spec; the result cache is disabled so every request runs
  the real search path;
* **overload** — a burst at ``max_inflight=1`` must produce immediate
  ``429`` rejections (never hangs, never queues): every response is
  200 or 429, rejections answer in well under the query service time,
  and the server's high-water inflight gauge stays at the bound.

Results land in ``benchmarks/results/`` and, machine-readable, in
``BENCH_serving.json`` at the repo root.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.datagen import generate_gstd, make_workload
from repro.engine import EngineConfig, QueryEngine
from repro.experiments import build_index, format_table
from repro.search.spec import QuerySpec
from repro.serve import BackgroundServer, ServeClient, ServeConfig
from repro.serve.client import ServeRejected

from conftest import emit, scaled

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

K = 5
CLIENT_COUNTS = (1, 4, 16)
PASSES = 3  # each client replays the workload this many times
OVERLOAD_REQUESTS_PER_CLIENT = 8


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[idx]


def test_serving_throughput_and_overload(benchmark):
    dataset = generate_gstd(
        scaled(60), samples_per_object=scaled(40), seed=19, heading="random"
    )
    index = build_index(dataset, "rtree", page_size=1024)
    engine = QueryEngine(
        index, dataset, config=EngineConfig(executor="thread", max_workers=4)
    )
    workload = list(make_workload(dataset, scaled(12), 0.1, seed=19))
    specs = [QuerySpec("mst", q, p, k=K) for q, p in workload]
    # the fidelity oracle: in-process answers, computed once up front
    oracle = {s.cache_key(): engine.execute(s).answer_json() for s in specs}

    def run():
        doc = {"bench": "serving", "k": K, "workload_queries": len(specs),
               "passes": PASSES, "sweep": [], "drift_checks": 0,
               "answer_drift": 0}

        # -- phase 1: throughput/latency sweep (cache off = real work) --
        config = ServeConfig(port=0, workers=4, cache_entries=0)
        with BackgroundServer(engine, config) as bg:
            host, port = bg.address
            for clients in CLIENT_COUNTS:
                latencies: list[list[float]] = [[] for _ in range(clients)]
                drift = [0] * clients
                checks = [0] * clients

                def worker(tid: int) -> None:
                    with ServeClient(
                        host, port, client_id=f"w{tid}"
                    ) as client:
                        for p in range(PASSES):
                            # rotate so clients don't move in lockstep
                            offset = (tid + p) % len(specs)
                            for spec in specs[offset:] + specs[:offset]:
                                t0 = time.perf_counter()
                                result = client.query(spec)
                                latencies[tid].append(
                                    time.perf_counter() - t0
                                )
                                checks[tid] += 1
                                if (result.answer_json()
                                        != oracle[spec.cache_key()]):
                                    drift[tid] += 1

                threads = [
                    threading.Thread(target=worker, args=(tid,))
                    for tid in range(clients)
                ]
                t0 = time.perf_counter()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                elapsed = time.perf_counter() - t0
                flat = sorted(x for per in latencies for x in per)
                doc["drift_checks"] += sum(checks)
                doc["answer_drift"] += sum(drift)
                doc["sweep"].append({
                    "clients": clients,
                    "requests": len(flat),
                    "queries_per_sec": len(flat) / elapsed,
                    "p50_ms": 1000.0 * _percentile(flat, 0.50),
                    "p99_ms": 1000.0 * _percentile(flat, 0.99),
                })

        # -- phase 2: overload burst against max_inflight=1 ------------
        config = ServeConfig(
            port=0, workers=1, max_inflight=1, cache_entries=0
        )
        with BackgroundServer(engine, config) as bg:
            host, port = bg.address
            served, rejected, other = [], [], []
            lock = threading.Lock()

            def flood(tid: int) -> None:
                with ServeClient(
                    host, port, client_id=f"f{tid}"
                ) as client:
                    for i in range(OVERLOAD_REQUESTS_PER_CLIENT):
                        spec = specs[(tid + i) % len(specs)]
                        t0 = time.perf_counter()
                        try:
                            client.query(spec)
                            bucket = served
                        except ServeRejected as exc:
                            bucket = (
                                rejected if exc.status == 429 else other
                            )
                        dt = time.perf_counter() - t0
                        with lock:
                            bucket.append(dt)

            threads = [
                threading.Thread(target=flood, args=(tid,))
                for tid in range(16)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            overload_elapsed = time.perf_counter() - t0
            with ServeClient(host, port) as client:
                stats = client.stats()
            doc["overload"] = {
                "offered": 16 * OVERLOAD_REQUESTS_PER_CLIENT,
                "served": len(served),
                "rejected_429": len(rejected),
                "unexpected": len(other),
                "elapsed_s": overload_elapsed,
                "served_p50_ms": 1000.0 * _percentile(sorted(served), 0.5),
                "rejection_p99_ms":
                    1000.0 * _percentile(sorted(rejected), 0.99),
                "inflight_high_water":
                    stats["serve"]["gauges"].get("serve.queue_depth", 0),
                "counters": stats["serve"]["counters"],
            }
        return doc

    doc = benchmark.pedantic(run, rounds=1, iterations=1)

    # fidelity gate: zero served-vs-in-process drift over the sweep
    assert doc["drift_checks"] >= PASSES * len(specs) * sum(CLIENT_COUNTS)
    assert doc["answer_drift"] == 0, f"{doc['answer_drift']} drifted answers"

    # overload gate: rejections happened, immediately, nothing hung,
    # and admitted work never exceeded the configured bound
    ov = doc["overload"]
    assert ov["served"] + ov["rejected_429"] == ov["offered"]
    assert ov["unexpected"] == 0
    assert ov["rejected_429"] > 0, "burst never tripped admission control"
    assert ov["inflight_high_water"] <= 1
    if ov["served"]:
        assert ov["rejection_p99_ms"] < max(50.0, ov["served_p50_ms"])

    rows = [
        [s["clients"], s["requests"], f"{s['queries_per_sec']:.1f}",
         f"{s['p50_ms']:.1f}", f"{s['p99_ms']:.1f}"]
        for s in doc["sweep"]
    ]
    rows.append([
        "overload", ov["offered"],
        f"{ov['served']} served / {ov['rejected_429']} x429",
        f"{ov['served_p50_ms']:.1f}",
        f"rej p99 {ov['rejection_p99_ms']:.1f}",
    ])
    text = format_table(
        ["clients", "requests", "q/s", "p50 ms", "p99 ms"],
        rows,
        title=(
            f"HTTP serving tier: k-MST k={K}, 4 workers, cache off "
            f"({doc['drift_checks']} fidelity checks, 0 drift)"
        ),
    )
    emit("serving", text, records=[doc])
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
