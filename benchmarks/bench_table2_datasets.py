"""Table 2 — dataset summary and index sizes.

Regenerates the paper's Table 2 columns (# objects, # entries, speed
distribution, 3D R-tree / TB-tree index sizes in MB) for the Trucks
substitute and the S0100...S1000 GSTD datasets, at bench scale.

Paper (full scale): Trucks 273 objects / 112K entries, 3.2 & 1.8 MB;
S1000 2000K entries, 99.1 & 52.4 MB.  Sizes scale linearly with the
entry count; the TB-tree stays ~45-55 % of the 3D R-tree because its
leaves pack segments of one trajectory densely.
"""

from repro.experiments import format_table, scaled_specs, table2

from conftest import SCALE, emit, scaled


def test_table2_dataset_summary(benchmark):
    # 0.05 of the paper's samples at SCALE=1 (Trucks ~21, GSTD 100).
    specs = scaled_specs(0.05 * SCALE)

    rows = benchmark.pedantic(lambda: table2(specs), rounds=1, iterations=1)

    text = format_table(
        ["dataset", "objects", "entries", "speed dist", "sigma",
         "3D R-tree MB", "TB-tree MB", "TB/R ratio"],
        [
            [
                r["dataset"],
                r["objects"],
                r["entries"],
                r["speed_distribution"],
                r["sigma"],
                r["rtree_mb"],
                r["tbtree_mb"],
                r["tbtree_mb"] / r["rtree_mb"],
            ]
            for r in rows
        ],
        title=f"Table 2 (scale={0.05 * SCALE:g} of paper samples)",
    )
    emit("table2_datasets", text)

    # Shape assertions mirroring the paper's table.
    assert [r["dataset"] for r in rows] == [
        "Trucks", "S0100", "S0250", "S0500", "S1000",
    ]
    gstd = rows[1:]
    for a, b in zip(gstd, gstd[1:]):
        assert b["entries"] > a["entries"]
        assert b["rtree_mb"] > a["rtree_mb"]
    for r in rows:
        # TB-tree is consistently the smaller index (paper: ~52 %,
        # thanks to the shared-endpoint leaf layout).
        assert r["tbtree_mb"] < r["rtree_mb"]
        assert 0.35 < r["tbtree_mb"] / r["rtree_mb"] < 0.95


def test_index_build_rate(benchmark):
    """Not a paper figure — build-throughput context for the sizes
    above (entries indexed per second, insertion path)."""
    from repro.experiments import DatasetSpec, build_dataset, build_index

    spec = DatasetSpec("S0100", "gstd", 100, scaled(100), "Lognormal", 0.6)
    dataset = build_dataset(spec)

    index = benchmark.pedantic(
        lambda: build_index(dataset, "rtree"), rounds=1, iterations=1
    )
    assert index.num_entries == dataset.total_segments()
