"""Figure 10, Q2 — BFMST scaling with query length.

Paper setup (Table 3): dataset S0500, query length 1 %...100 % of a
random data trajectory's lifetime, k = 1, both trees.

Paper's shape: execution time grows ~quadratically with query length
(longer query = more nodes temporally alive *and* more integration
work per candidate); pruning power decays slowly; the TB-tree
*overtakes* the 3D R-tree as the query grows because its
trajectory-bundled leaves deliver whole candidate trajectories in few
page reads.

The wall-clock crossover itself is a disk-I/O phenomenon (the paper's
indexes were disk-resident on 2007 hardware) that a CPU-bound pure-
Python run cannot replay; the *mechanism* is measurable here as
retrieval density — entries integrated per leaf page read — whose
TB-over-R advantage must grow with query length (see EXPERIMENTS.md).
"""

from repro.experiments import ascii_multi_chart, format_table, q2_query_length

from conftest import emit, perf_point_records, scaled, traced_query_record

LENGTHS = (0.01, 0.05, 0.25, 0.50, 1.00)


def test_fig10_q2_query_length(benchmark):
    points = benchmark.pedantic(
        lambda: q2_query_length(
            query_lengths=LENGTHS,
            num_objects=500,
            samples_per_object=scaled(150),
            num_queries=scaled(6),
            trees=("rtree", "tbtree"),
            verify=False,
            page_size=512,
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        [p.tree, f"{p.value:.0%}", p.mean_time_ms, p.mean_pruning_power,
         p.mean_node_accesses, p.retrieval_density]
        for p in points
    ]
    text = format_table(
        ["tree", "query length", "mean time (ms)", "pruning power",
         "node accesses", "entries/leaf-read"],
        rows,
        title="Figure 10 Q2: scaling with query length (S0500, k=1)",
    )
    xs = sorted({p.value for p in points})
    series = {
        tree: [
            next(p.mean_time_ms for p in points if p.tree == tree and p.value == x)
            for x in xs
        ]
        for tree in ("rtree", "tbtree")
    }
    text += "\n\nexecution time (ms) vs query length:\n"
    text += ascii_multi_chart(xs, series, height=10, width=50)
    records = perf_point_records("fig10_q2_query_length", points)
    for p in points:
        records.append(
            {
                "bench": "fig10_q2_query_length",
                "tree": p.tree,
                "query_length": p.value,
                "retrieval_density": p.retrieval_density,
            }
        )
    records.append(traced_query_record("fig10_q2_query_length", k=1))
    emit("fig10_q2_query_length", text, records=records)

    by = {(p.tree, p.value): p for p in points}
    for tree in ("rtree", "tbtree"):
        # time increases steeply with query length (superlinear):
        t_small = by[(tree, 0.05)].mean_time_ms
        t_large = by[(tree, 1.00)].mean_time_ms
        assert t_large > 4.0 * t_small, (
            f"{tree}: {t_large:.1f} vs {t_small:.1f} ms — expected steep growth"
        )
        # pruning decays gently, it does not collapse
        assert by[(tree, 1.00)].mean_pruning_power > 0.5
    # The mechanism behind the paper's crossover: the TB-tree's
    # retrieval-density advantage over the R-tree grows with query
    # length (each TB page read delivers more of the candidate
    # trajectories the long query must integrate).
    adv_short = (
        by[("tbtree", 0.01)].retrieval_density
        / by[("rtree", 0.01)].retrieval_density
    )
    adv_long = (
        by[("tbtree", 1.00)].retrieval_density
        / by[("rtree", 1.00)].retrieval_density
    )
    assert adv_long > adv_short, (
        f"TB retrieval-density advantage should grow with query length "
        f"({adv_short:.2f} -> {adv_long:.2f})"
    )
    assert adv_long > 1.5
