"""Throughput — batched QueryEngine vs sequential one-off queries.

The engine's pitch is session reuse: open the index once with a
session-sized buffer, pin its upper levels, and let the DISSIM/MINDIST
caches carry work across the batch.  The baseline is what a script
without the engine does — reopen the saved index for every query (cold
10 % buffer, no caches) and run the searches one at a time.  Same GSTD
workload on both sides (each query issued three times, the interactive
re-execution/refinement pattern), identical answers required, and the
engine must clear a 1.5x queries/sec bar.
"""

import time

from repro import QueryEngine, QueryRequest, bfmst_search
from repro.datagen import generate_gstd, make_workload
from repro.engine import SESSION_BUFFER_FRACTION
from repro.experiments import build_index, format_table
from repro.index import load_index, save_index

from conftest import emit, scaled

K = 5
REPEATS = 4  # each query re-issued: refinement/re-execution pattern


def _requests(workload):
    return [
        QueryRequest("mst", query, period, k=K)
        for query, period in workload
    ]


def test_batched_engine_vs_one_off(benchmark, tmp_path):
    dataset = generate_gstd(
        scaled(150), samples_per_object=scaled(120), seed=47, heading="random"
    )
    index = build_index(dataset, "rtree", page_size=512)
    path = tmp_path / "throughput.idx"
    save_index(index, path)
    workload = list(make_workload(dataset, scaled(10), 0.05, seed=47))
    workload = workload * REPEATS

    def run_all():
        # Untimed warm-up so first-touch costs (imports, OS file cache)
        # don't penalise whichever side happens to run first.
        warm = load_index(path)
        query, period = workload[0]
        bfmst_search(warm, None, query, period=period, k=K)
        warm.pagefile.close()

        # Baseline: one-off stack — reload the index for every query.
        t0 = time.perf_counter()
        baseline_answers = []
        for query, period in workload:
            one_off = load_index(path)
            try:
                result = bfmst_search(one_off, None, query, period=period, k=K)
                baseline_answers.append(tuple(result.ids))
            finally:
                one_off.pagefile.close()
        baseline_s = time.perf_counter() - t0
        baseline_qps = len(workload) / baseline_s

        rows = [
            ["one-off (reload per query)", len(workload),
             1000.0 * baseline_s / len(workload), baseline_qps, "-", "-"],
        ]
        records = [
            {
                "bench": "batch_throughput",
                "mode": "one_off",
                "num_queries": len(workload),
                "queries_per_sec": baseline_qps,
                "cache": {},
            }
        ]

        batches = {}
        for mode in ("serial", "thread"):
            session_index = load_index(
                path, buffer_fraction=SESSION_BUFFER_FRACTION
            )
            with QueryEngine(session_index, dataset) as engine:
                batch = engine.run_batch(_requests(workload), executor=mode)
            batches[mode] = batch
            cache = batch.cache_counters
            dissim = (
                cache.get("engine.cache.dissim.hits", 0),
                cache.get("engine.cache.dissim.misses", 0),
            )
            mindist = (
                cache.get("engine.cache.mindist.hits", 0),
                cache.get("engine.cache.mindist.misses", 0),
            )
            rows.append(
                [
                    f"engine ({mode})",
                    len(workload),
                    1000.0 * batch.wall_time_s / len(workload),
                    batch.queries_per_sec,
                    f"{dissim[0]}/{dissim[0] + dissim[1]}",
                    f"{mindist[0]}/{mindist[0] + mindist[1]}",
                ]
            )
            records.append(
                {
                    "bench": "batch_throughput",
                    "mode": f"engine_{mode}",
                    "num_queries": len(workload),
                    "queries_per_sec": batch.queries_per_sec,
                    "speedup_vs_one_off": batch.queries_per_sec / baseline_qps,
                    "cache": cache,
                }
            )
        return rows, records, baseline_answers, batches

    rows, records, baseline_answers, batches = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    text = format_table(
        ["mode", "queries", "ms/query", "queries/sec",
         "dissim hits", "mindist hits"],
        rows,
        title=f"Batched engine vs one-off loop (k={K}, x{REPEATS} repeats)",
    )
    emit("batch_throughput", text, records=records)

    # Batched answers are identical to the one-off answers, both modes.
    for mode, batch in batches.items():
        engine_answers = [tuple(r.ids) for r in batch.results]
        assert engine_answers == baseline_answers, mode

    # Acceptance bar: the batched engine sustains >= 1.5x the one-off
    # loop's queries/sec on the same workload.
    serial_qps = batches["serial"].queries_per_sec
    one_off_qps = records[0]["queries_per_sec"]
    assert serial_qps >= 1.5 * one_off_qps

    # The caches did real work: the repeated pass produces hits.
    cache = batches["serial"].cache_counters
    assert cache.get("engine.cache.mindist.hits", 0) > 0
