"""Ablation — the paper's two pruning heuristics.

Runs the same query set with Heuristic 1 (OPTDISSIM candidate
rejection) and Heuristic 2 (MINDISSIMINC early termination) toggled,
reporting node accesses and time.  H2 is the workhorse (the paper:
"the algorithm prunes mainly by the MINDISSIMINC heuristic"); both
configurations must return identical answers.
"""

from repro.datagen import generate_gstd, make_workload
from repro.experiments import build_index, format_table
from repro.search import bfmst_search

from conftest import emit, scaled, traced_query_record

CONFIGS = [
    ("none", False, False),
    ("H1 only", True, False),
    ("H2 only", False, True),
    ("H1+H2 (paper)", True, True),
]


def test_heuristic_contributions(benchmark):
    dataset = generate_gstd(
        scaled(250), samples_per_object=scaled(150), seed=13, heading="random"
    )
    index = build_index(dataset, "rtree", page_size=512)
    workload = make_workload(dataset, scaled(8), 0.05, seed=13)

    def run_all():
        out = {}
        for name, h1, h2 in CONFIGS:
            accesses = 0
            rejected = 0
            answers = []
            import time

            t0 = time.perf_counter()
            for query, period in workload:
                result = bfmst_search(
                    index, None, query, period=period, k=2,
                    use_heuristic1=h1, use_heuristic2=h2,
                )
                matches, stats = result.matches, result.stats
                accesses += stats.node_accesses
                rejected += stats.candidates_rejected
                answers.append(tuple(m.trajectory_id for m in matches))
            out[name] = {
                "time_s": time.perf_counter() - t0,
                "accesses": accesses / len(workload),
                "rejected": rejected / len(workload),
                "answers": answers,
            }
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    text = format_table(
        ["configuration", "mean node accesses", "mean H1 rejections",
         "total time (s)"],
        [
            [name, results[name]["accesses"], results[name]["rejected"],
             results[name]["time_s"]]
            for name, _h1, _h2 in CONFIGS
        ],
        title="Ablation: pruning heuristics (S0250-like, 5% queries, k=2)",
    )
    records = [
        {
            "bench": "ablation_heuristics",
            "configuration": name,
            "heuristic1": h1,
            "heuristic2": h2,
            "mean_node_accesses": results[name]["accesses"],
            "mean_h1_rejections": results[name]["rejected"],
            "total_time_s": results[name]["time_s"],
        }
        for name, h1, h2 in CONFIGS
    ]
    records.append(traced_query_record("ablation_heuristics", k=2))
    emit("ablation_heuristics", text, records=records)

    # identical answers under every configuration
    reference = results["H1+H2 (paper)"]["answers"]
    for name, _h1, _h2 in CONFIGS:
        assert results[name]["answers"] == reference, name

    # H2 is the main pruner: enabling it must cut node accesses hard.
    assert results["H2 only"]["accesses"] < 0.5 * results["none"]["accesses"]
    assert (
        results["H1+H2 (paper)"]["accesses"]
        <= results["H2 only"]["accesses"] + 1e-9
    )
    # H1 does reject candidates when enabled.
    assert results["H1 only"]["rejected"] > 0
