"""Live ingestion throughput — points/sec absorbed while querying.

Feeds a GSTD event stream into an :class:`repro.IngestStore`
(WAL + memtable + generation compaction) while a reader thread runs
k-MST queries against live views the whole time.  Reports sustained
ingest throughput and concurrent query throughput; the run is **gated
on zero answer drift**: at three checkpoints mid-stream and once at the
end, the live merged answer must be byte-identical to a from-scratch
rebuild of the store's current state.

Human-readable table lands in ``benchmarks/results/``; the
machine-readable document in ``BENCH_ingest.json`` at the repo root.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from conftest import emit, scaled

from repro import IngestStore
from repro.datagen import generate_gstd, make_workload
from repro.experiments import format_table
from repro.search.api import bfmst_search

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_ingest.json"

K = 5
SYNC_EVERY = 64


def _events(dataset):
    return sorted(
        ((tr.object_id, p.x, p.y, p.t) for tr in dataset for p in tr),
        key=lambda e: (e[3], e[0]),
    )


def _oracle(dataset, query, period, k):
    from repro.index import TBTree

    index = TBTree()
    for tr in dataset:
        index.insert(tr)
    index.finalize()
    if index.num_entries == 0:
        return []
    result = bfmst_search(index, None, query, period=period, k=k)
    return [(m.trajectory_id, m.dissim) for m in result.matches]


def _live(store, query, period, k):
    matches, _ = store.kmst(query, period, k)
    return [(m.trajectory_id, m.dissim) for m in matches]


def test_ingest_throughput(benchmark, tmp_path):
    dataset = generate_gstd(
        scaled(40), samples_per_object=scaled(60), seed=19
    )
    events = _events(dataset)
    (query, period), = make_workload(dataset, 1, 0.3, seed=19)
    checkpoints = [len(events) // 4, len(events) // 2, (3 * len(events)) // 4]

    def run():
        store = IngestStore.create(
            tmp_path / "store",
            sync_every=SYNC_EVERY,
            auto_compact_points=max(500, len(events) // 6),
        )
        stop = threading.Event()
        reader_stats = {"queries": 0, "errors": []}

        def reader():
            try:
                while not stop.is_set():
                    store.kmst(query, period, K)
                    reader_stats["queries"] += 1
            except Exception as exc:
                reader_stats["errors"].append(repr(exc))

        thread = threading.Thread(target=reader, name="bench-reader")
        drift_checks = 0
        try:
            thread.start()
            t0 = time.perf_counter()
            for i, (oid, x, y, t) in enumerate(events):
                store.append(oid, x, y, t)
                if i + 1 in checkpoints:
                    want = _oracle(store.current_dataset(), query, period, K)
                    got = _live(store, query, period, K)
                    assert got == want, f"answer drift at checkpoint {i + 1}"
                    drift_checks += 1
            store.sync()
            elapsed = time.perf_counter() - t0
        finally:
            stop.set()
            thread.join(timeout=60)

        assert not reader_stats["errors"], reader_stats["errors"]

        # the gate: final live answers byte-identical to a rebuild
        final = store.current_dataset()
        for k in (1, K, 10):
            assert _live(store, query, period, k) == _oracle(
                final, query, period, k
            ), f"answer drift at k={k}"
            drift_checks += 1

        counters = dict(store.metrics.counters)
        doc = {
            "bench": "ingest",
            "objects": len(dataset),
            "points": len(events),
            "sync_every": SYNC_EVERY,
            "elapsed_s": elapsed,
            "points_per_sec": len(events) / elapsed,
            "queries_during_ingest": reader_stats["queries"],
            "queries_per_sec": reader_stats["queries"] / elapsed,
            "compactions": counters.get("ingest.compactions", 0),
            "generation": store.generation_number,
            "wal_syncs": counters.get("ingest.wal_syncs", 0),
            "generation_pins": counters.get("ingest.generation_pins", 0),
            "generation_unpins": counters.get("ingest.generation_unpins", 0),
            "drift_checks": drift_checks,
            "answer_drift": 0,
        }
        store.close()
        return doc

    doc = benchmark.pedantic(run, rounds=1, iterations=1)

    # pin leaks would show up here as a counter imbalance
    assert doc["generation_pins"] == doc["generation_unpins"]
    assert doc["drift_checks"] >= 6

    text = format_table(
        ["metric", "value"],
        [
            ["points absorbed", f"{doc['points']}"],
            ["ingest points/s", f"{doc['points_per_sec']:.0f}"],
            ["concurrent queries", f"{doc['queries_during_ingest']}"],
            ["queries/s while ingesting", f"{doc['queries_per_sec']:.1f}"],
            ["compactions", f"{doc['compactions']}"],
            ["final generation", f"{doc['generation']}"],
            ["drift checks (all clean)", f"{doc['drift_checks']}"],
        ],
        title="Live ingestion under concurrent k-MST queries (GSTD)",
    )
    emit("ingest", text, records=[doc])
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
