"""Ablation — the index substrates side by side.

The paper evaluates BFMST on the 3D R-tree and the TB-tree, cites the
STR-tree as the third family member, and notes the algorithm "can be
directly applied to any member of the R-tree family" — so the R*-tree
joins too.  The bench puts all four through the same Q1-style workload
and reports build time, index size, trajectory clustering, and
query-time behaviour — the trade-off spectrum (R-tree/R*: spatial
discrimination; TB-tree: trajectory clustering + smallest; STR-tree:
in between).
"""

import time

from repro import bfmst_search
from repro.datagen import generate_gstd, make_workload
from repro.experiments import build_index, format_table

from conftest import emit, scaled

TREES = ("rtree", "rstar", "strtree", "tbtree")


def _leaves_per_trajectory(index) -> float:
    spread: dict[int, set[int]] = {}
    for node in index.nodes():
        if node.is_leaf:
            for e in node.entries:
                spread.setdefault(e.trajectory_id, set()).add(node.page_id)
    return sum(len(s) for s in spread.values()) / len(spread)


def test_three_tree_comparison(benchmark):
    dataset = generate_gstd(
        scaled(250), samples_per_object=scaled(150), seed=31, heading="random"
    )
    workload = make_workload(dataset, scaled(8), 0.05, seed=31)

    def run_all():
        rows = []
        answer_sets = []
        for tree in TREES:
            t0 = time.perf_counter()
            index = build_index(dataset, tree, page_size=512)
            build_s = time.perf_counter() - t0
            clustering = _leaves_per_trajectory(index)
            t0 = time.perf_counter()
            prune = 0.0
            answers = []
            for query, period in workload:
                result = bfmst_search(index, None, query, period=period, k=1)
                matches, stats = result.matches, result.stats
                prune += stats.pruning_power
                answers.append(tuple(m.trajectory_id for m in matches))
            query_ms = 1000.0 * (time.perf_counter() - t0) / len(workload)
            rows.append(
                [
                    tree,
                    build_s,
                    index.size_mb(),
                    clustering,
                    query_ms,
                    prune / len(workload),
                ]
            )
            answer_sets.append(answers)
        return rows, answer_sets

    rows, answer_sets = benchmark.pedantic(run_all, rounds=1, iterations=1)

    text = format_table(
        ["tree", "build (s)", "size MB", "leaves/trajectory",
         "query (ms)", "pruning power"],
        rows,
        title="Ablation: R-tree vs R*-tree vs STR-tree vs TB-tree (5% queries, k=1)",
    )
    emit("ablation_trees", text)

    # all substrates answer identically
    for other in answer_sets[1:]:
        assert other == answer_sets[0]

    by = {r[0]: r for r in rows}
    # clustering spectrum: TB best (one trajectory per leaf chain),
    # STR between, plain R-tree worst.
    assert by["tbtree"][3] <= by["strtree"][3] <= by["rtree"][3] + 1e-9
    # TB-tree is the smallest index (chained leaves).
    assert by["tbtree"][2] < by["rtree"][2]
    assert by["tbtree"][2] < by["strtree"][2]
    # every tree still prunes the vast majority of nodes
    for row in rows:
        assert row[5] > 0.8
