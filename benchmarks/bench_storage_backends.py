"""Benchmark — durable storage backends (see docs/STORAGE.md).

Two questions about the v2 storage engine:

1. **Cold start** — open a persisted index and answer the first batch
   of queries, disk backend vs the zero-copy mmap backend.  The mmap
   open is one ``mmap`` call regardless of file size and the OS pages
   data in lazily, so its cold path does no buffered ``read`` calls at
   all (``physical_reads == 0``); answers must be identical either
   way.
2. **Checksum overhead** — the v2 frame verifies magic, version, CRC
   and padding on every page read.  Deserialising the node dominates
   by far in pure Python, so the gate is strict: framed parse
   (verify + parse) must stay within 10 % of the bare legacy parse.
"""

import time

from repro import bfmst_search, save_index
from repro.datagen import generate_gstd, make_workload
from repro.experiments import build_index, format_table
from repro.index import load_index
from repro.index.node import Node

from conftest import emit, scaled, traced_query_record


def _index_and_workload(seed=23):
    dataset = generate_gstd(
        scaled(100), samples_per_object=scaled(80), seed=seed
    )
    index = build_index(dataset, "rtree", page_size=1024)
    workload = make_workload(dataset, scaled(20, minimum=5), 0.05, seed=seed)
    return dataset, index, workload


def test_cold_start_disk_vs_mmap(benchmark, tmp_path):
    dataset, index, workload = _index_and_workload()
    path = tmp_path / "bench.pages"
    save_index(index, path)

    def cold_run(backend):
        t0 = time.perf_counter()
        loaded = load_index(path, backend=backend)
        open_ms = (time.perf_counter() - t0) * 1000
        answers = []
        t0 = time.perf_counter()
        for query, period in workload:
            result = bfmst_search(loaded, None, query, period=period, k=5)
            answers.append(
                [(m.trajectory_id, m.dissim) for m in result.matches]
            )
        query_ms = (time.perf_counter() - t0) * 1000
        stats = loaded.pagefile.stats
        row = {
            "backend": backend,
            "open_ms": open_ms,
            "first_queries_ms": query_ms,
            "queries": len(workload),
            "physical_reads": stats.physical_reads,
            "mmap_reads": stats.mmap_reads,
        }
        loaded.pagefile.close()
        return row, answers

    def run_all():
        return [cold_run(backend) for backend in ("disk", "mmap")]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [r for r, _ in results]
    disk, mm = rows

    text = format_table(
        ["backend", "open ms", f"first {len(workload)} queries ms",
         "physical reads", "mmap reads"],
        [
            [r["backend"], f"{r['open_ms']:.2f}",
             f"{r['first_queries_ms']:.1f}",
             r["physical_reads"], r["mmap_reads"]]
            for r in rows
        ],
        title="Cold start: disk vs mmap serving backend",
    )
    emit(
        "storage_backends_cold_start",
        text,
        records=[{"bench": "storage_backends", **r} for r in rows]
        + [traced_query_record("storage_backends")],
    )

    # Same index, same workload -> byte-identical answers.
    assert results[0][1] == results[1][1]
    # The mmap cold path never issues a buffered read; all page traffic
    # is zero-copy slices of the mapping.
    assert mm["physical_reads"] == 0
    assert mm["mmap_reads"] > 0
    assert disk["physical_reads"] > 0


def test_checksum_overhead_under_ten_percent(benchmark):
    """Reading a framed page = frame verification (CRC et al.) + node
    parse.  Gate the verification at < 10 % of the bare parse cost."""
    dataset, index, _ = _index_and_workload(seed=29)
    index.buffer.flush(index._serializer)
    pagefile = index.pagefile
    framed = [
        bytes(pagefile.read(pid)) for pid in range(pagefile.num_pages)
    ]
    framed = [p for p in framed if p.strip(b"\x00")]
    payloads = [p[16:] for p in framed]  # what a v1 page slot held

    repeats = scaled(5, minimum=3)

    def parse_framed():
        for pid, page in enumerate(framed):
            Node.from_bytes(pid, page)

    def parse_payload_only():
        for pid, payload in enumerate(payloads):
            Node.from_payload(pid, payload)

    def measure(fn):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def run_all():
        # Warm both paths once, then take min-of-N for stability.
        parse_framed()
        parse_payload_only()
        return measure(parse_framed), measure(parse_payload_only)

    framed_s, payload_s = benchmark.pedantic(run_all, rounds=1, iterations=1)
    ratio = framed_s / payload_s

    text = format_table(
        ["path", "pages", "best-of-N ms", "vs bare parse"],
        [
            ["framed (verify + parse)", len(framed),
             f"{framed_s * 1000:.2f}", f"{ratio:.3f}x"],
            ["bare parse (v1 path)", len(payloads),
             f"{payload_s * 1000:.2f}", "1.000x"],
        ],
        title="Checksum overhead on the page read path (< 10% budget)",
    )
    emit(
        "storage_backends_checksum",
        text,
        records=[{
            "bench": "storage_backends",
            "pages": len(framed),
            "framed_parse_s": framed_s,
            "payload_parse_s": payload_s,
            "overhead_ratio": ratio,
        }],
    )

    assert ratio < 1.10, f"frame verification costs {ratio:.3f}x"
